//! Payload encodings for the three frame types.
//!
//! All integers are little-endian; `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so a decoded response is **bitwise**
//! identical to the one the server computed — including NaN payloads and
//! signed zeros. Collections are a `u64` count followed by the elements;
//! every count is validated against the bytes actually remaining *before*
//! any allocation, so a hostile length field cannot balloon memory.
//!
//! * **Request** ([`encode_request`] / [`decode_request`]) — the request id,
//!   a relative deadline in microseconds (`0` = none; protocol v3), the
//!   full scenario (ETC matrix, assignment, τ, [`RadiusOptions`]), and
//!   the [`EvalKind`]. `Curve` requests carry their [`CurveSpec`] — an
//!   explicit τ grid or adaptive-refinement bounds — as IEEE bit patterns
//!   like every other `f64`. The scenario travels by value: the server
//!   reconstructs it and relies on the service's fingerprint cache to avoid
//!   recompiling plans for scenarios it has already seen.
//! * **Response** ([`encode_response`] / [`decode_response`]) — the full
//!   [`EvalResponse`] including every per-feature [`RadiusVerdict`], the
//!   [`Disposition`] (full / brownout / deadline-exceeded), and — for
//!   curve requests — the trailing [`CurveMeta`] (evaluated τ levels plus
//!   the monotonicity flag), so the client sees exactly what an in-process
//!   caller would.
//! * **Error** ([`encode_error`] / [`decode_error`]) — a typed refusal:
//!   [`WireError::Overloaded`] maps the service's queue-full/draining
//!   shedding onto the wire; [`WireError::Invalid`] is a permanent
//!   rejection (malformed or semantically impossible request).
//!
//! Decoding is total: malformed payloads yield typed
//! [`DecodeError`]s, never panics (fuzzed at the workspace root).

use crate::frame::DecodeError;
use crate::server::NetStatsSnapshot;
use fepia_core::{
    Bound, DegradeReason, FailReason, PlanVerdict, RadiusMethod, RadiusOptions, RadiusResult,
    RadiusVerdict,
};
use fepia_etc::EtcMatrix;
use fepia_mapping::Mapping;
use fepia_optim::{Norm, SolverOptions, VecN};
use fepia_serve::{
    CacheOutcome, CurveGrid, CurveMeta, CurveSpec, Disposition, EvalKind, EvalRequest,
    EvalResponse, JobHeuristic, JobSnapshot, JobSpec, JobState, Scenario, ShardStatsSnapshot,
    ShedReason,
};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Byte-level writer/reader
// ---------------------------------------------------------------------------

/// Append-only little-endian byte writer.
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty writer.
    pub fn new() -> PayloadWriter {
        PayloadWriter { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

impl Default for PayloadWriter {
    fn default() -> Self {
        PayloadWriter::new()
    }
}

/// Bounds-checked little-endian reader over a payload slice.
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A reader over the whole payload.
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: self.pos + n,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a collection count and rejects it — before any allocation —
    /// unless `count * min_elem_bytes` could still fit in the bytes left.
    fn count(&mut self, what: &'static str, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let len = self.u64()?;
        let limit = (self.remaining() / min_elem_bytes.max(1)) as u64;
        if len > limit {
            return Err(DecodeError::BadLength { what, len, limit });
        }
        Ok(len as usize)
    }

    fn str(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let len = self.count(what, 1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8 { what })
    }

    fn f64_vec(&mut self, what: &'static str) -> Result<Vec<f64>, DecodeError> {
        let len = self.count(what, 8)?;
        (0..len).map(|_| self.f64()).collect()
    }

    /// Fails with [`DecodeError::TrailingBytes`] unless fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const KIND_VERDICT: u8 = 1;
const KIND_ORIGINS: u8 = 2;
const KIND_MOVES: u8 = 3;
const KIND_CURVE: u8 = 4;

/// Encodes a full request with no deadline: id, scenario by value,
/// evaluation kind. Equivalent to [`encode_request_with_deadline`] with
/// `deadline_us = 0`.
pub fn encode_request(req: &EvalRequest) -> Vec<u8> {
    encode_request_with_deadline(req, 0)
}

/// Encodes a full request: id, relative deadline in microseconds (`0` =
/// none), scenario by value, evaluation kind.
pub fn encode_request_with_deadline(req: &EvalRequest, deadline_us: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(req.id);
    w.u64(deadline_us);
    let s = &req.scenario;
    w.usize(s.etc().apps());
    w.usize(s.etc().machines());
    for &v in s.etc().values() {
        w.f64(v);
    }
    w.usize(s.mapping().machines());
    w.usize(s.mapping().assignment().len());
    for &j in s.mapping().assignment() {
        w.usize(j);
    }
    w.f64(s.tau());
    encode_options(&mut w, s.opts());
    match &req.kind {
        EvalKind::Verdict => w.u8(KIND_VERDICT),
        EvalKind::Origins(os) => {
            w.u8(KIND_ORIGINS);
            w.usize(os.len());
            for o in os {
                w.usize(o.dim());
                for &x in o.as_slice() {
                    w.f64(x);
                }
            }
        }
        EvalKind::Moves(ms) => {
            w.u8(KIND_MOVES);
            w.usize(ms.len());
            for &(app, dst) in ms {
                w.usize(app);
                w.usize(dst);
            }
        }
        EvalKind::Curve(spec) => {
            w.u8(KIND_CURVE);
            match &spec.grid {
                CurveGrid::Explicit(levels) => {
                    w.u8(1);
                    w.usize(levels.len());
                    for &t in levels {
                        w.f64(t);
                    }
                }
                CurveGrid::Adaptive {
                    tau_lo,
                    tau_hi,
                    max_depth,
                    rho_resolution,
                } => {
                    w.u8(2);
                    w.f64(*tau_lo);
                    w.f64(*tau_hi);
                    w.u32(*max_depth);
                    w.f64(*rho_resolution);
                }
            }
        }
    }
    w.finish()
}

fn encode_options(w: &mut PayloadWriter, opts: &RadiusOptions) {
    match &opts.norm {
        Norm::L1 => w.u8(1),
        Norm::L2 => w.u8(2),
        Norm::LInf => w.u8(3),
        Norm::WeightedL2(weights) => {
            w.u8(4);
            w.usize(weights.len());
            for &x in weights {
                w.f64(x);
            }
        }
    }
    let s = &opts.solver;
    w.f64(s.tol);
    w.usize(s.max_outer);
    w.f64(s.t_max_factor);
    w.f64(s.fd_step);
    w.f64(s.seed_jitter);
    w.f64(s.root.x_tol);
    w.f64(s.root.f_tol);
    w.usize(s.root.max_iter);
}

fn decode_options(r: &mut PayloadReader<'_>) -> Result<RadiusOptions, DecodeError> {
    let norm = match r.u8()? {
        1 => Norm::L1,
        2 => Norm::L2,
        3 => Norm::LInf,
        4 => Norm::WeightedL2(r.f64_vec("norm weights")?),
        tag => {
            return Err(DecodeError::BadTag {
                what: "Norm",
                tag: tag as u64,
            })
        }
    };
    // Field order mirrors `encode_options`; each read is sequential, so
    // bind locals first rather than build the struct literal in place.
    let tol = r.f64()?;
    let max_outer = r.u64()? as usize;
    let t_max_factor = r.f64()?;
    let fd_step = r.f64()?;
    let seed_jitter = r.f64()?;
    let x_tol = r.f64()?;
    let f_tol = r.f64()?;
    let max_iter = r.u64()? as usize;
    let mut solver = SolverOptions {
        tol,
        max_outer,
        t_max_factor,
        fd_step,
        seed_jitter,
        ..SolverOptions::default()
    };
    solver.root.x_tol = x_tol;
    solver.root.f_tol = f_tol;
    solver.root.max_iter = max_iter;
    Ok(RadiusOptions { norm, solver })
}

/// A structurally valid request payload, not yet semantically validated.
/// [`RequestPayload::into_request`] performs the semantic checks (positive
/// finite ETC entries, in-range assignment, τ ≥ 1) that separate a
/// *well-formed* frame from a *servable* request.
#[derive(Clone, Debug)]
pub struct RequestPayload {
    /// Client-chosen request id, echoed in every reply.
    pub id: u64,
    /// Relative deadline in microseconds from server admission; `0` means
    /// none. Read by the server *before* [`RequestPayload::into_request`]
    /// so expired requests can be dropped without evaluation.
    pub deadline_us: u64,
    apps: usize,
    machines: usize,
    etc_values: Vec<f64>,
    mapping_machines: usize,
    assignment: Vec<usize>,
    tau: f64,
    opts: RadiusOptions,
    kind: EvalKind,
}

impl RequestPayload {
    /// Semantic validation: builds the [`EvalRequest`] or explains why the
    /// payload can never be served (the server answers with a permanent
    /// [`WireError::Invalid`]). Never panics, whatever the field values.
    pub fn into_request(self) -> Result<EvalRequest, String> {
        if self.apps == 0 || self.machines == 0 {
            return Err(format!(
                "empty ETC matrix ({}x{})",
                self.apps, self.machines
            ));
        }
        // Empty kind bodies are well-formed frames but can never be served:
        // answering them with zero verdicts would be indistinguishable from
        // a served-but-empty response, so they are rejected typed here (and
        // again at service validation for in-process callers).
        match &self.kind {
            EvalKind::Origins(os) if os.is_empty() => {
                return Err("origins request carries no origins".into());
            }
            EvalKind::Moves(ms) if ms.is_empty() => {
                return Err("moves request carries no moves".into());
            }
            EvalKind::Curve(spec) => {
                if let Some(msg) = spec.validate() {
                    return Err(msg);
                }
            }
            _ => {}
        }
        let rows: Vec<Vec<f64>> = self
            .etc_values
            .chunks(self.machines)
            .map(|c| c.to_vec())
            .collect();
        let etc = EtcMatrix::try_from_rows(rows).map_err(|e| e.to_string())?;
        if self.mapping_machines == 0 {
            return Err("mapping declares zero machines".into());
        }
        if self.assignment.is_empty() {
            return Err("empty assignment".into());
        }
        if let Some(&bad) = self
            .assignment
            .iter()
            .find(|&&j| j >= self.mapping_machines)
        {
            return Err(format!(
                "assignment entry {bad} out of range for {} machines",
                self.mapping_machines
            ));
        }
        let mapping = Mapping::new(self.assignment, self.mapping_machines);
        let scenario = Scenario::new(Arc::new(etc), mapping, self.tau, self.opts)
            .map_err(|e| e.to_string())?;
        Ok(EvalRequest {
            id: self.id,
            scenario: Arc::new(scenario),
            kind: self.kind,
        })
    }
}

/// Decodes a request payload. Structural errors (truncation, bad tags,
/// implausible lengths) are [`DecodeError`]s; semantic errors are deferred
/// to [`RequestPayload::into_request`].
pub fn decode_request(payload: &[u8]) -> Result<RequestPayload, DecodeError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    let deadline_us = r.u64()?;
    let apps = r.u64()? as usize;
    let machines = r.u64()? as usize;
    let cells = apps.checked_mul(machines).unwrap_or(u64::MAX as usize);
    let limit = (r.remaining() / 8) as u64;
    if cells as u64 > limit {
        return Err(DecodeError::BadLength {
            what: "ETC matrix",
            len: cells as u64,
            limit,
        });
    }
    let etc_values: Vec<f64> = (0..cells).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let mapping_machines = r.u64()? as usize;
    let n_assign = r.count("assignment", 8)?;
    let assignment: Vec<usize> = (0..n_assign)
        .map(|_| r.u64().map(|v| v as usize))
        .collect::<Result<_, _>>()?;
    let tau = r.f64()?;
    let opts = decode_options(&mut r)?;
    let kind = match r.u8()? {
        KIND_VERDICT => EvalKind::Verdict,
        KIND_ORIGINS => {
            let n = r.count("origins", 8)?;
            let mut origins = Vec::with_capacity(n);
            for _ in 0..n {
                origins.push(VecN::new(r.f64_vec("origin components")?));
            }
            EvalKind::Origins(origins)
        }
        KIND_MOVES => {
            let n = r.count("moves", 16)?;
            let mut moves = Vec::with_capacity(n);
            for _ in 0..n {
                let app = r.u64()? as usize;
                let dst = r.u64()? as usize;
                moves.push((app, dst));
            }
            EvalKind::Moves(moves)
        }
        KIND_CURVE => {
            let grid = match r.u8()? {
                1 => CurveGrid::Explicit(r.f64_vec("curve levels")?),
                2 => {
                    let tau_lo = r.f64()?;
                    let tau_hi = r.f64()?;
                    let max_depth = r.u32()?;
                    let rho_resolution = r.f64()?;
                    CurveGrid::Adaptive {
                        tau_lo,
                        tau_hi,
                        max_depth,
                        rho_resolution,
                    }
                }
                tag => {
                    return Err(DecodeError::BadTag {
                        what: "CurveGrid",
                        tag: tag as u64,
                    })
                }
            };
            EvalKind::Curve(CurveSpec { grid })
        }
        tag => {
            return Err(DecodeError::BadTag {
                what: "EvalKind",
                tag: tag as u64,
            })
        }
    };
    r.finish()?;
    Ok(RequestPayload {
        id,
        deadline_us,
        apps,
        machines,
        etc_values,
        mapping_machines,
        assignment,
        tau,
        opts,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Encodes a full response, bit-for-bit: every `f64` travels as its IEEE
/// bit pattern.
pub fn encode_response(resp: &EvalResponse) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(resp.id);
    w.usize(resp.shard);
    w.u32(resp.attempts);
    match resp.cache {
        None => w.u8(0),
        Some(CacheOutcome::Hit) => w.u8(1),
        Some(CacheOutcome::Compiled) => w.u8(2),
        Some(CacheOutcome::Coalesced) => w.u8(3),
    }
    w.u8(match resp.disposition {
        Disposition::Full => 0,
        Disposition::Brownout => 1,
        Disposition::DeadlineExceeded => 2,
    });
    w.usize(resp.verdicts.len());
    for v in &resp.verdicts {
        encode_verdict(&mut w, v);
    }
    match &resp.curve {
        None => w.u8(0),
        Some(meta) => {
            w.u8(1);
            w.usize(meta.taus.len());
            for &t in &meta.taus {
                w.f64(t);
            }
            w.u8(meta.monotone as u8);
        }
    }
    w.finish()
}

fn encode_verdict(w: &mut PayloadWriter, v: &PlanVerdict) {
    w.f64(v.metric_lo);
    w.f64(v.metric_hi);
    match v.binding {
        None => w.u8(0),
        Some(b) => {
            w.u8(1);
            w.usize(b);
        }
    }
    w.u8(match v.kind {
        fepia_core::VerdictKind::Exact => 1,
        fepia_core::VerdictKind::Bounded => 2,
        fepia_core::VerdictKind::Infeasible => 3,
        fepia_core::VerdictKind::Failed => 4,
    });
    w.usize(v.radii.len());
    for r in &v.radii {
        encode_radius_verdict(w, r);
    }
}

fn encode_radius_verdict(w: &mut PayloadWriter, r: &RadiusVerdict) {
    match r {
        RadiusVerdict::Exact(res) => {
            w.u8(1);
            w.f64(res.radius);
            match &res.boundary_point {
                None => w.u8(0),
                Some(p) => {
                    w.u8(1);
                    w.usize(p.dim());
                    for &x in p.as_slice() {
                        w.f64(x);
                    }
                }
            }
            w.u8(match res.bound {
                None => 0,
                Some(Bound::Min) => 1,
                Some(Bound::Max) => 2,
            });
            w.u8(res.violated as u8);
            w.u8(match res.method {
                RadiusMethod::Analytic => 1,
                RadiusMethod::Numeric => 2,
                RadiusMethod::Unbounded => 3,
            });
            w.usize(res.iterations);
            w.u64(res.f_evals);
        }
        RadiusVerdict::Bounded {
            lo,
            hi,
            reason,
            restarts,
        } => {
            w.u8(2);
            w.f64(*lo);
            w.f64(*hi);
            w.u8(match reason {
                DegradeReason::IterationCap => 1,
                DegradeReason::BudgetExhausted => 2,
            });
            w.usize(*restarts);
        }
        RadiusVerdict::Infeasible => w.u8(3),
        RadiusVerdict::Failed(reason) => {
            w.u8(4);
            encode_fail_reason(w, reason);
        }
    }
}

fn encode_fail_reason(w: &mut PayloadWriter, reason: &FailReason) {
    match reason {
        FailReason::NonFiniteInput { index } => {
            w.u8(1);
            w.usize(*index);
        }
        FailReason::NonFiniteImpact => w.u8(2),
        FailReason::DimensionMismatch { got, expected } => {
            w.u8(3);
            w.usize(*got);
            w.usize(*expected);
        }
        FailReason::Solver(msg) => {
            w.u8(4);
            w.str(msg);
        }
        FailReason::Panic(msg) => {
            w.u8(5);
            w.str(msg);
        }
    }
}

/// Decodes a response payload into the same [`EvalResponse`] an in-process
/// caller would have received (bit-for-bit `f64` fields).
pub fn decode_response(payload: &[u8]) -> Result<EvalResponse, DecodeError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    let shard = r.u64()? as usize;
    let attempts = r.u32()?;
    let cache = match r.u8()? {
        0 => None,
        1 => Some(CacheOutcome::Hit),
        2 => Some(CacheOutcome::Compiled),
        3 => Some(CacheOutcome::Coalesced),
        tag => {
            return Err(DecodeError::BadTag {
                what: "CacheOutcome",
                tag: tag as u64,
            })
        }
    };
    let disposition = match r.u8()? {
        0 => Disposition::Full,
        1 => Disposition::Brownout,
        2 => Disposition::DeadlineExceeded,
        tag => {
            return Err(DecodeError::BadTag {
                what: "Disposition",
                tag: tag as u64,
            })
        }
    };
    let n = r.count("verdicts", 18)?;
    let mut verdicts = Vec::with_capacity(n);
    for _ in 0..n {
        verdicts.push(decode_verdict(&mut r)?);
    }
    let curve = match r.u8()? {
        0 => None,
        1 => {
            let taus = r.f64_vec("curve taus")?;
            let monotone = match r.u8()? {
                0 => false,
                1 => true,
                tag => {
                    return Err(DecodeError::BadTag {
                        what: "monotone flag",
                        tag: tag as u64,
                    })
                }
            };
            Some(CurveMeta { taus, monotone })
        }
        tag => {
            return Err(DecodeError::BadTag {
                what: "curve option",
                tag: tag as u64,
            })
        }
    };
    r.finish()?;
    Ok(EvalResponse {
        id,
        shard,
        cache,
        verdicts,
        attempts,
        disposition,
        curve,
    })
}

fn decode_verdict(r: &mut PayloadReader<'_>) -> Result<PlanVerdict, DecodeError> {
    let metric_lo = r.f64()?;
    let metric_hi = r.f64()?;
    let binding = match r.u8()? {
        0 => None,
        1 => Some(r.u64()? as usize),
        tag => {
            return Err(DecodeError::BadTag {
                what: "binding option",
                tag: tag as u64,
            })
        }
    };
    let kind = match r.u8()? {
        1 => fepia_core::VerdictKind::Exact,
        2 => fepia_core::VerdictKind::Bounded,
        3 => fepia_core::VerdictKind::Infeasible,
        4 => fepia_core::VerdictKind::Failed,
        tag => {
            return Err(DecodeError::BadTag {
                what: "VerdictKind",
                tag: tag as u64,
            })
        }
    };
    let n = r.count("radii", 1)?;
    let mut radii = Vec::with_capacity(n);
    for _ in 0..n {
        radii.push(decode_radius_verdict(r)?);
    }
    Ok(PlanVerdict {
        radii,
        metric_lo,
        metric_hi,
        binding,
        kind,
    })
}

fn decode_radius_verdict(r: &mut PayloadReader<'_>) -> Result<RadiusVerdict, DecodeError> {
    match r.u8()? {
        1 => {
            let radius = r.f64()?;
            let boundary_point = match r.u8()? {
                0 => None,
                1 => Some(VecN::new(r.f64_vec("boundary point")?)),
                tag => {
                    return Err(DecodeError::BadTag {
                        what: "boundary option",
                        tag: tag as u64,
                    })
                }
            };
            let bound = match r.u8()? {
                0 => None,
                1 => Some(Bound::Min),
                2 => Some(Bound::Max),
                tag => {
                    return Err(DecodeError::BadTag {
                        what: "Bound",
                        tag: tag as u64,
                    })
                }
            };
            let violated = match r.u8()? {
                0 => false,
                1 => true,
                tag => {
                    return Err(DecodeError::BadTag {
                        what: "violated flag",
                        tag: tag as u64,
                    })
                }
            };
            let method = match r.u8()? {
                1 => RadiusMethod::Analytic,
                2 => RadiusMethod::Numeric,
                3 => RadiusMethod::Unbounded,
                tag => {
                    return Err(DecodeError::BadTag {
                        what: "RadiusMethod",
                        tag: tag as u64,
                    })
                }
            };
            let iterations = r.u64()? as usize;
            let f_evals = r.u64()?;
            Ok(RadiusVerdict::Exact(RadiusResult {
                radius,
                boundary_point,
                bound,
                violated,
                method,
                iterations,
                f_evals,
            }))
        }
        2 => {
            let lo = r.f64()?;
            let hi = r.f64()?;
            let reason = match r.u8()? {
                1 => DegradeReason::IterationCap,
                2 => DegradeReason::BudgetExhausted,
                tag => {
                    return Err(DecodeError::BadTag {
                        what: "DegradeReason",
                        tag: tag as u64,
                    })
                }
            };
            let restarts = r.u64()? as usize;
            Ok(RadiusVerdict::Bounded {
                lo,
                hi,
                reason,
                restarts,
            })
        }
        3 => Ok(RadiusVerdict::Infeasible),
        4 => Ok(RadiusVerdict::Failed(decode_fail_reason(r)?)),
        tag => Err(DecodeError::BadTag {
            what: "RadiusVerdict",
            tag: tag as u64,
        }),
    }
}

fn decode_fail_reason(r: &mut PayloadReader<'_>) -> Result<FailReason, DecodeError> {
    match r.u8()? {
        1 => Ok(FailReason::NonFiniteInput {
            index: r.u64()? as usize,
        }),
        2 => Ok(FailReason::NonFiniteImpact),
        3 => Ok(FailReason::DimensionMismatch {
            got: r.u64()? as usize,
            expected: r.u64()? as usize,
        }),
        4 => Ok(FailReason::Solver(r.str("solver message")?)),
        5 => Ok(FailReason::Panic(r.str("panic message")?)),
        tag => Err(DecodeError::BadTag {
            what: "FailReason",
            tag: tag as u64,
        }),
    }
}

// ---------------------------------------------------------------------------
// Stats polling
// ---------------------------------------------------------------------------

/// A live counter snapshot served over TCP: per-shard service counters
/// plus the server's own frame counters, correlated to the poll by id.
/// Lets operators watch a running server without reading JSONL post-mortem.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReply {
    /// The poll id, echoed.
    pub id: u64,
    /// One snapshot per shard, in shard order
    /// (see [`fepia_serve::ServiceStats`]).
    pub shards: Vec<ShardStatsSnapshot>,
    /// The TCP server's frame counters.
    pub net: NetStatsSnapshot,
}

impl StatsReply {
    /// Sum of the per-shard counters.
    pub fn service_totals(&self) -> ShardStatsSnapshot {
        fepia_serve::ServiceStats {
            shards: self.shards.clone(),
        }
        .totals()
    }
}

/// Encodes a stats poll: just the echo id.
pub fn encode_stats_request(id: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(id);
    w.finish()
}

/// Decodes a stats poll back to its id.
pub fn decode_stats_request(payload: &[u8]) -> Result<u64, DecodeError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    r.finish()?;
    Ok(id)
}

/// Field count per encoded [`ShardStatsSnapshot`] (all `u64`).
const SHARD_STAT_FIELDS: usize = 11;

/// Encodes a [`StatsReply`]: id, shard count, 11 `u64` counters per shard,
/// then the 10 `u64` net counters.
pub fn encode_stats_reply(reply: &StatsReply) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(reply.id);
    w.usize(reply.shards.len());
    for s in &reply.shards {
        w.u64(s.submitted);
        w.u64(s.completed);
        w.u64(s.shed_full);
        w.u64(s.shed_shutdown);
        w.u64(s.cache_hits);
        w.u64(s.cache_misses);
        w.u64(s.cache_coalesced);
        w.u64(s.worker_panics);
        w.u64(s.busy_ns);
        w.u64(s.deadline_expired);
        w.u64(s.brownout_evals);
    }
    let n = &reply.net;
    w.u64(n.connections);
    w.u64(n.frames_read);
    w.u64(n.frames_written);
    w.u64(n.decode_errors);
    w.u64(n.overloaded);
    w.u64(n.invalid);
    w.u64(n.chaos_drops);
    w.u64(n.max_pipeline_depth);
    w.u64(n.admission_brownout);
    w.u64(n.admission_shed);
    w.finish()
}

/// Decodes a [`StatsReply`]. Total: hostile counts fail typed before any
/// allocation, like every other collection on the wire.
pub fn decode_stats_reply(payload: &[u8]) -> Result<StatsReply, DecodeError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    let n = r.count("shard stats", SHARD_STAT_FIELDS * 8)?;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        shards.push(ShardStatsSnapshot {
            submitted: r.u64()?,
            completed: r.u64()?,
            shed_full: r.u64()?,
            shed_shutdown: r.u64()?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            cache_coalesced: r.u64()?,
            worker_panics: r.u64()?,
            busy_ns: r.u64()?,
            deadline_expired: r.u64()?,
            brownout_evals: r.u64()?,
        });
    }
    let net = NetStatsSnapshot {
        connections: r.u64()?,
        frames_read: r.u64()?,
        frames_written: r.u64()?,
        decode_errors: r.u64()?,
        overloaded: r.u64()?,
        invalid: r.u64()?,
        chaos_drops: r.u64()?,
        max_pipeline_depth: r.u64()?,
        admission_brownout: r.u64()?,
        admission_shed: r.u64()?,
    };
    r.finish()?;
    Ok(StatsReply { id, shards, net })
}

// ---------------------------------------------------------------------------
// Optimizer jobs
// ---------------------------------------------------------------------------

const JOB_H_ANNEALING: u8 = 1;
const JOB_H_TABU: u8 = 2;
const JOB_H_GENETIC: u8 = 3;
const JOB_H_ROBUST_GREEDY: u8 = 4;

/// Encodes a job submission: request id, the ETC by value, τ, the seed,
/// population/batch/thread knobs, and the tagged heuristic portfolio.
pub fn encode_submit_job(id: u64, spec: &JobSpec) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(id);
    w.usize(spec.etc.apps());
    w.usize(spec.etc.machines());
    for &v in spec.etc.values() {
        w.f64(v);
    }
    w.f64(spec.tau);
    w.u64(spec.seed);
    w.u32(spec.population);
    w.u32(spec.batches);
    w.u32(spec.threads);
    w.usize(spec.heuristics.len());
    for h in &spec.heuristics {
        match h {
            JobHeuristic::Annealing {
                iterations,
                initial_temperature,
                cooling,
            } => {
                w.u8(JOB_H_ANNEALING);
                w.u32(*iterations);
                w.f64(*initial_temperature);
                w.f64(*cooling);
            }
            JobHeuristic::Tabu {
                iterations,
                tabu_len,
            } => {
                w.u8(JOB_H_TABU);
                w.u32(*iterations);
                w.u32(*tabu_len);
            }
            JobHeuristic::Genetic {
                population,
                generations,
                mutation_rate,
            } => {
                w.u8(JOB_H_GENETIC);
                w.u32(*population);
                w.u32(*generations);
                w.f64(*mutation_rate);
            }
            JobHeuristic::RobustGreedy => w.u8(JOB_H_ROBUST_GREEDY),
        }
    }
    w.finish()
}

/// A structurally valid job submission, not yet semantically validated —
/// the job-layer analogue of [`RequestPayload`].
/// [`SubmitJobPayload::into_spec`] performs the semantic checks
/// (`JobSpec::validate`) that separate a well-formed frame from an
/// admissible job.
#[derive(Clone, Debug)]
pub struct SubmitJobPayload {
    /// Client-chosen request id, echoed in the [`JobReply`].
    pub id: u64,
    apps: usize,
    machines: usize,
    etc_values: Vec<f64>,
    tau: f64,
    seed: u64,
    population: u32,
    batches: u32,
    threads: u32,
    heuristics: Vec<JobHeuristic>,
}

impl SubmitJobPayload {
    /// Semantic validation: builds the [`JobSpec`] or explains why the
    /// payload can never be admitted (the server answers with a permanent
    /// [`WireError::Invalid`]). Never panics, whatever the field values.
    pub fn into_spec(self) -> Result<JobSpec, String> {
        if self.apps == 0 || self.machines == 0 {
            return Err(format!(
                "empty ETC matrix ({}x{})",
                self.apps, self.machines
            ));
        }
        let rows: Vec<Vec<f64>> = self
            .etc_values
            .chunks(self.machines)
            .map(|c| c.to_vec())
            .collect();
        let etc = EtcMatrix::try_from_rows(rows).map_err(|e| e.to_string())?;
        let spec = JobSpec {
            etc: Arc::new(etc),
            tau: self.tau,
            seed: self.seed,
            population: self.population,
            batches: self.batches,
            heuristics: self.heuristics,
            threads: self.threads,
        };
        match spec.validate() {
            Some(msg) => Err(msg),
            None => Ok(spec),
        }
    }
}

/// Decodes a job submission. Structural errors are [`DecodeError`]s;
/// semantic errors are deferred to [`SubmitJobPayload::into_spec`].
pub fn decode_submit_job(payload: &[u8]) -> Result<SubmitJobPayload, DecodeError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    let apps = r.u64()? as usize;
    let machines = r.u64()? as usize;
    let cells = apps.checked_mul(machines).unwrap_or(u64::MAX as usize);
    let limit = (r.remaining() / 8) as u64;
    if cells as u64 > limit {
        return Err(DecodeError::BadLength {
            what: "job ETC matrix",
            len: cells as u64,
            limit,
        });
    }
    let etc_values: Vec<f64> = (0..cells).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let tau = r.f64()?;
    let seed = r.u64()?;
    let population = r.u32()?;
    let batches = r.u32()?;
    let threads = r.u32()?;
    let n = r.count("job heuristics", 1)?;
    let mut heuristics = Vec::with_capacity(n);
    for _ in 0..n {
        heuristics.push(match r.u8()? {
            JOB_H_ANNEALING => JobHeuristic::Annealing {
                iterations: r.u32()?,
                initial_temperature: r.f64()?,
                cooling: r.f64()?,
            },
            JOB_H_TABU => JobHeuristic::Tabu {
                iterations: r.u32()?,
                tabu_len: r.u32()?,
            },
            JOB_H_GENETIC => JobHeuristic::Genetic {
                population: r.u32()?,
                generations: r.u32()?,
                mutation_rate: r.f64()?,
            },
            JOB_H_ROBUST_GREEDY => JobHeuristic::RobustGreedy,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "JobHeuristic",
                    tag: tag as u64,
                })
            }
        });
    }
    r.finish()?;
    Ok(SubmitJobPayload {
        id,
        apps,
        machines,
        etc_values,
        tau,
        seed,
        population,
        batches,
        threads,
        heuristics,
    })
}

fn encode_job_ref(id: u64, job: u64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(id);
    w.u64(job);
    w.finish()
}

fn decode_job_ref(payload: &[u8]) -> Result<(u64, u64), DecodeError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    let job = r.u64()?;
    r.finish()?;
    Ok((id, job))
}

/// Encodes a job status poll: `(request id, job id)`.
pub fn encode_job_poll(id: u64, job: u64) -> Vec<u8> {
    encode_job_ref(id, job)
}

/// Decodes a job status poll back to `(request id, job id)`.
pub fn decode_job_poll(payload: &[u8]) -> Result<(u64, u64), DecodeError> {
    decode_job_ref(payload)
}

/// Encodes a job cancellation: `(request id, job id)`.
pub fn encode_job_cancel(id: u64, job: u64) -> Vec<u8> {
    encode_job_ref(id, job)
}

/// Decodes a job cancellation back to `(request id, job id)`.
pub fn decode_job_cancel(payload: &[u8]) -> Result<(u64, u64), DecodeError> {
    decode_job_ref(payload)
}

/// The server's one answer shape for every job operation (submit, poll,
/// cancel): the request id plus the job's current [`JobSnapshot`]. Every
/// `f64` in the front travels as its IEEE bit pattern, so a polled front
/// is **bitwise** identical to the one the job table holds.
#[derive(Clone, Debug)]
pub struct JobReply {
    /// The request id, echoed.
    pub id: u64,
    /// The job's snapshot at reply time.
    pub snapshot: JobSnapshot,
}

/// Encodes a [`JobReply`].
pub fn encode_job_reply(reply: &JobReply) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    let s = &reply.snapshot;
    w.u64(reply.id);
    w.u64(s.job);
    w.u8(match s.state {
        JobState::Running => 1,
        JobState::Done => 2,
        JobState::Cancelled => 3,
        JobState::Failed => 4,
    });
    match &s.error {
        None => w.u8(0),
        Some(msg) => {
            w.u8(1);
            w.str(msg);
        }
    }
    w.u32(s.batches_done);
    w.u32(s.batches_total);
    w.u64(s.candidates_done);
    w.u64(s.candidates_total);
    w.u64(s.evals_done);
    w.u64(s.evals_total);
    w.usize(s.front.len());
    for p in &s.front {
        w.u64(p.index);
        w.f64(p.makespan);
        w.f64(p.metric);
        w.str(&p.heuristic);
        w.usize(p.assignment.len());
        for &j in &p.assignment {
            w.usize(j);
        }
    }
    w.finish()
}

/// Decodes a [`JobReply`]. Total: hostile counts fail typed before any
/// allocation, like every other collection on the wire.
pub fn decode_job_reply(payload: &[u8]) -> Result<JobReply, DecodeError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    let job = r.u64()?;
    let state = match r.u8()? {
        1 => JobState::Running,
        2 => JobState::Done,
        3 => JobState::Cancelled,
        4 => JobState::Failed,
        tag => {
            return Err(DecodeError::BadTag {
                what: "JobState",
                tag: tag as u64,
            })
        }
    };
    let error = match r.u8()? {
        0 => None,
        1 => Some(r.str("job error message")?),
        tag => {
            return Err(DecodeError::BadTag {
                what: "job error option",
                tag: tag as u64,
            })
        }
    };
    let batches_done = r.u32()?;
    let batches_total = r.u32()?;
    let candidates_done = r.u64()?;
    let candidates_total = r.u64()?;
    let evals_done = r.u64()?;
    let evals_total = r.u64()?;
    // Minimum encoded point: index + makespan + metric (8 each), empty
    // heuristic string (8), empty assignment (8).
    let n = r.count("front points", 40)?;
    let mut front = Vec::with_capacity(n);
    for _ in 0..n {
        let index = r.u64()?;
        let makespan = r.f64()?;
        let metric = r.f64()?;
        let heuristic = r.str("front heuristic name")?;
        let n_assign = r.count("front assignment", 8)?;
        let assignment: Vec<usize> = (0..n_assign)
            .map(|_| r.u64().map(|v| v as usize))
            .collect::<Result<_, _>>()?;
        front.push(fepia_mapping::FrontPoint {
            index,
            makespan,
            metric,
            heuristic,
            assignment,
        });
    }
    r.finish()?;
    Ok(JobReply {
        id,
        snapshot: JobSnapshot {
            job,
            state,
            error,
            batches_done,
            batches_total,
            candidates_done,
            candidates_total,
            evals_done,
            evals_total,
            front,
        },
    })
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A typed server-side refusal, correlated to the request by id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The target shard shed the request; retry later (the client's
    /// backoff loop does). Mirrors [`fepia_serve::Overloaded`].
    Overloaded {
        /// Shard that refused.
        shard: u64,
        /// Why it refused.
        reason: ShedReason,
    },
    /// The request can never be served as sent (malformed payload fields
    /// or out-of-range indices); resubmitting it unchanged cannot succeed.
    Invalid(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Overloaded { shard, reason } => write!(
                f,
                "shard {shard} shed the request: {}",
                match reason {
                    ShedReason::QueueFull => "queue full",
                    ShedReason::ShuttingDown => "shutting down",
                }
            ),
            WireError::Invalid(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

/// Encodes an error payload: the echoed request id plus the typed refusal.
pub fn encode_error(id: u64, err: &WireError) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(id);
    match err {
        WireError::Overloaded { shard, reason } => {
            w.u8(1);
            w.u64(*shard);
            w.u8(match reason {
                ShedReason::QueueFull => 1,
                ShedReason::ShuttingDown => 2,
            });
        }
        WireError::Invalid(msg) => {
            w.u8(2);
            w.str(msg);
        }
    }
    w.finish()
}

/// Decodes an error payload into `(request id, refusal)`.
pub fn decode_error(payload: &[u8]) -> Result<(u64, WireError), DecodeError> {
    let mut r = PayloadReader::new(payload);
    let id = r.u64()?;
    let err = match r.u8()? {
        1 => {
            let shard = r.u64()?;
            let reason = match r.u8()? {
                1 => ShedReason::QueueFull,
                2 => ShedReason::ShuttingDown,
                tag => {
                    return Err(DecodeError::BadTag {
                        what: "ShedReason",
                        tag: tag as u64,
                    })
                }
            };
            WireError::Overloaded { shard, reason }
        }
        2 => WireError::Invalid(r.str("invalid-request message")?),
        tag => {
            return Err(DecodeError::BadTag {
                what: "WireError",
                tag: tag as u64,
            })
        }
    };
    r.finish()?;
    Ok((id, err))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fepia_core::{RadiusOptions, VerdictKind};
    use fepia_serve::workload::{request, scenario_pool, WorkloadSpec};

    fn sample_requests() -> Vec<EvalRequest> {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        (0..20).map(|i| request(&spec, &pool, i)).collect()
    }

    #[test]
    fn request_roundtrip_reconstructs_scenario_bitwise() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            let decoded = decode_request(&bytes).unwrap().into_request().unwrap();
            assert_eq!(decoded.id, req.id);
            assert!(decoded.scenario.same_as(&req.scenario));
            assert_eq!(
                decoded.scenario.fingerprint(),
                req.scenario.fingerprint(),
                "fingerprints must survive the wire"
            );
            match (&decoded.kind, &req.kind) {
                (EvalKind::Verdict, EvalKind::Verdict) => {}
                (EvalKind::Moves(a), EvalKind::Moves(b)) => assert_eq!(a, b),
                (EvalKind::Origins(a), EvalKind::Origins(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.dim(), y.dim());
                        for i in 0..x.dim() {
                            assert_eq!(x[i].to_bits(), y[i].to_bits());
                        }
                    }
                }
                other => panic!("kind drifted over the wire: {other:?}"),
            }
        }
    }

    #[test]
    fn weighted_norm_and_options_roundtrip() {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        let base = &pool[0];
        let opts = RadiusOptions {
            norm: Norm::WeightedL2(vec![0.5, 2.0, 1.25]),
            solver: SolverOptions {
                tol: 3e-7,
                max_outer: 17,
                ..SolverOptions::default()
            },
        };
        let scenario = Scenario::new(
            Arc::clone(base.etc()),
            base.mapping().clone(),
            1.31,
            opts.clone(),
        )
        .unwrap();
        let req = EvalRequest {
            id: 7,
            scenario: Arc::new(scenario),
            kind: EvalKind::Verdict,
        };
        let decoded = decode_request(&encode_request(&req))
            .unwrap()
            .into_request()
            .unwrap();
        assert_eq!(decoded.scenario.opts(), &opts);
        assert_eq!(decoded.scenario.tau().to_bits(), 1.31f64.to_bits());
    }

    #[test]
    fn semantic_garbage_is_invalid_not_panic() {
        // Well-formed frames whose *contents* are unservable must surface
        // as Err from into_request, not as panics.
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        let good = EvalRequest {
            id: 1,
            scenario: Arc::clone(&pool[0]),
            kind: EvalKind::Verdict,
        };
        let bytes = encode_request(&good);
        let mut payload = decode_request(&bytes).unwrap();
        payload.tau = f64::NAN;
        assert!(payload.clone().into_request().is_err());
        payload.tau = 1.2;
        payload.assignment[0] = usize::MAX;
        assert!(payload.clone().into_request().is_err());
        payload.assignment[0] = 0;
        payload.etc_values[0] = -3.0;
        assert!(payload.into_request().is_err());
    }

    #[test]
    fn response_roundtrip_is_bitwise() {
        let resp = EvalResponse {
            id: 99,
            shard: 3,
            cache: Some(CacheOutcome::Coalesced),
            attempts: 2,
            disposition: Disposition::Brownout,
            verdicts: vec![
                PlanVerdict {
                    radii: vec![
                        RadiusVerdict::Exact(RadiusResult {
                            radius: 1.5,
                            boundary_point: Some(VecN::new(vec![1.0, -0.0, f64::NAN])),
                            bound: Some(Bound::Max),
                            violated: false,
                            method: RadiusMethod::Analytic,
                            iterations: 0,
                            f_evals: 1,
                        }),
                        RadiusVerdict::Bounded {
                            lo: 0.25,
                            hi: f64::INFINITY,
                            reason: DegradeReason::BudgetExhausted,
                            restarts: 4,
                        },
                        RadiusVerdict::Infeasible,
                        RadiusVerdict::Failed(FailReason::Panic("chaos: injected".into())),
                    ],
                    metric_lo: 0.0,
                    metric_hi: 1.5,
                    binding: Some(0),
                    kind: VerdictKind::Failed,
                },
                PlanVerdict {
                    radii: vec![],
                    metric_lo: f64::INFINITY,
                    metric_hi: f64::INFINITY,
                    binding: None,
                    kind: VerdictKind::Exact,
                },
            ],
            curve: None,
        };
        let bytes = encode_response(&resp);
        let decoded = decode_response(&bytes).unwrap();
        // Re-encoding the decoded response must reproduce the bytes exactly:
        // the encoding is canonical, so byte equality IS bitwise equality.
        assert_eq!(encode_response(&decoded), bytes);
        assert_eq!(decoded.id, resp.id);
        assert_eq!(decoded.disposition, Disposition::Brownout);
        assert_eq!(decoded.verdicts.len(), 2);
        assert!(decoded.verdicts[0].radii.len() == 4);
    }

    #[test]
    fn curve_request_roundtrips_both_grid_kinds() {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        let grids = [
            CurveGrid::Explicit(vec![1.05, 1.2, 1.4, 2.0]),
            CurveGrid::Adaptive {
                tau_lo: 1.01,
                tau_hi: 1.75,
                max_depth: 5,
                rho_resolution: 1e-4,
            },
        ];
        for grid in grids {
            let req = EvalRequest {
                id: 12,
                scenario: Arc::clone(&pool[0]),
                kind: EvalKind::Curve(CurveSpec { grid: grid.clone() }),
            };
            let bytes = encode_request(&req);
            let decoded = decode_request(&bytes).unwrap().into_request().unwrap();
            match &decoded.kind {
                EvalKind::Curve(s) => assert_eq!(s.grid, grid),
                other => panic!("curve kind drifted over the wire: {other:?}"),
            }
            // Canonical: re-encoding the decoded request reproduces the bytes.
            assert_eq!(encode_request(&decoded), bytes);
        }
    }

    #[test]
    fn curve_response_meta_roundtrips_bitwise() {
        let resp = EvalResponse {
            id: 13,
            shard: 1,
            cache: Some(CacheOutcome::Hit),
            attempts: 1,
            disposition: Disposition::Full,
            verdicts: vec![PlanVerdict {
                radii: vec![],
                metric_lo: 2.5,
                metric_hi: 2.5,
                binding: Some(1),
                kind: VerdictKind::Exact,
            }],
            curve: Some(CurveMeta {
                taus: vec![1.05, 1.2, f64::INFINITY],
                monotone: true,
            }),
        };
        let bytes = encode_response(&resp);
        let decoded = decode_response(&bytes).unwrap();
        assert_eq!(encode_response(&decoded), bytes);
        assert_eq!(decoded.curve, resp.curve);

        // A hostile tau count fails typed before allocation: the count sits
        // right after the curve presence byte (second-to-last 9 bytes are
        // count, last is the monotone flag).
        let mut m = bytes.clone();
        let count_pos = m.len() - 1 - 3 * 8 - 8;
        m[count_pos..count_pos + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            decode_response(&m),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn empty_kind_bodies_are_invalid_not_empty_responses() {
        // A well-formed frame carrying zero origins / zero moves / a bad
        // curve spec must surface as Err from into_request, never as a
        // servable request that would produce an empty verdict list.
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        for kind in [
            EvalKind::Origins(vec![]),
            EvalKind::Moves(vec![]),
            EvalKind::Curve(CurveSpec {
                grid: CurveGrid::Explicit(vec![]),
            }),
            EvalKind::Curve(CurveSpec {
                grid: CurveGrid::Explicit(vec![1.4, 1.2]),
            }),
        ] {
            let req = EvalRequest {
                id: 3,
                scenario: Arc::clone(&pool[0]),
                kind,
            };
            let payload = decode_request(&encode_request(&req)).unwrap();
            assert!(payload.into_request().is_err());
        }
    }

    #[test]
    fn request_deadline_roundtrips() {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        let req = EvalRequest {
            id: 5,
            scenario: Arc::clone(&pool[0]),
            kind: EvalKind::Verdict,
        };
        let bytes = encode_request_with_deadline(&req, 2_500);
        let payload = decode_request(&bytes).unwrap();
        assert_eq!(payload.deadline_us, 2_500);
        // The no-deadline encoder is exactly deadline 0.
        assert_eq!(encode_request(&req), encode_request_with_deadline(&req, 0));
        assert_eq!(
            decode_request(&encode_request(&req)).unwrap().deadline_us,
            0
        );
    }

    #[test]
    fn error_roundtrip() {
        for err in [
            WireError::Overloaded {
                shard: 2,
                reason: ShedReason::QueueFull,
            },
            WireError::Overloaded {
                shard: 0,
                reason: ShedReason::ShuttingDown,
            },
            WireError::Invalid("move 3 out of range".into()),
        ] {
            let bytes = encode_error(41, &err);
            assert_eq!(decode_error(&bytes).unwrap(), (41, err));
        }
    }

    #[test]
    fn stats_roundtrip_and_hostile_count() {
        let reply = StatsReply {
            id: 31,
            shards: vec![
                ShardStatsSnapshot {
                    submitted: 10,
                    completed: 9,
                    shed_full: 1,
                    shed_shutdown: 0,
                    cache_hits: 7,
                    cache_misses: 2,
                    cache_coalesced: 1,
                    worker_panics: 3,
                    busy_ns: 123_456_789,
                    deadline_expired: 6,
                    brownout_evals: 4,
                },
                ShardStatsSnapshot::default(),
            ],
            net: NetStatsSnapshot {
                connections: 4,
                frames_read: 100,
                frames_written: 99,
                decode_errors: 1,
                overloaded: 2,
                invalid: 0,
                chaos_drops: 5,
                max_pipeline_depth: 17,
                admission_brownout: 8,
                admission_shed: 3,
            },
        };
        let bytes = encode_stats_reply(&reply);
        assert_eq!(decode_stats_reply(&bytes).unwrap(), reply);
        assert_eq!(decode_stats_request(&encode_stats_request(31)).unwrap(), 31);

        // A hostile shard count fails typed before any allocation.
        let mut m = bytes.clone();
        m[8..16].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            decode_stats_reply(&m),
            Err(DecodeError::BadLength { .. })
        ));
        // Truncation anywhere is typed, never a panic.
        for cut in 0..bytes.len() {
            assert!(decode_stats_reply(&bytes[..cut]).is_err());
        }
    }

    fn sample_job_spec() -> JobSpec {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        JobSpec {
            etc: Arc::clone(pool[0].etc()),
            tau: 1.2,
            seed: 42,
            population: 16,
            batches: 4,
            heuristics: vec![
                JobHeuristic::RobustGreedy,
                JobHeuristic::Annealing {
                    iterations: 200,
                    initial_temperature: 0.1,
                    cooling: 0.995,
                },
                JobHeuristic::Tabu {
                    iterations: 5,
                    tabu_len: 16,
                },
                JobHeuristic::Genetic {
                    population: 8,
                    generations: 3,
                    mutation_rate: 0.05,
                },
            ],
            threads: 2,
        }
    }

    #[test]
    fn submit_job_roundtrips_bitwise() {
        let spec = sample_job_spec();
        let bytes = encode_submit_job(9, &spec);
        let payload = decode_submit_job(&bytes).unwrap();
        assert_eq!(payload.id, 9);
        let decoded = payload.into_spec().unwrap();
        assert_eq!(decoded.heuristics, spec.heuristics);
        assert_eq!(decoded.seed, spec.seed);
        assert_eq!(decoded.population, spec.population);
        assert_eq!(decoded.batches, spec.batches);
        assert_eq!(decoded.threads, spec.threads);
        assert_eq!(decoded.tau.to_bits(), spec.tau.to_bits());
        // Canonical: re-encoding the decoded spec reproduces the bytes, so
        // the ETC survived bit-for-bit.
        assert_eq!(encode_submit_job(9, &decoded), bytes);
    }

    #[test]
    fn submit_job_semantic_garbage_is_err_not_panic() {
        let spec = sample_job_spec();
        let bytes = encode_submit_job(1, &spec);
        // τ below 1 is a well-formed frame but an inadmissible job.
        let mut bad = spec.clone();
        bad.tau = 0.5;
        let payload = decode_submit_job(&encode_submit_job(1, &bad)).unwrap();
        assert!(payload.into_spec().is_err());
        // batches > population likewise.
        let mut bad = spec.clone();
        bad.batches = bad.population + 1;
        let payload = decode_submit_job(&encode_submit_job(1, &bad)).unwrap();
        assert!(payload.into_spec().is_err());
        // Truncation anywhere is typed.
        for cut in 0..bytes.len() {
            assert!(decode_submit_job(&bytes[..cut]).is_err());
        }
        // An unknown heuristic tag is typed.
        let mut spec_one = spec.clone();
        spec_one.heuristics = vec![JobHeuristic::RobustGreedy];
        let mut m = encode_submit_job(1, &spec_one);
        let last = m.len() - 1;
        m[last] = 99;
        assert!(matches!(
            decode_submit_job(&m),
            Err(DecodeError::BadTag { .. })
        ));
    }

    #[test]
    fn job_poll_and_cancel_roundtrip() {
        assert_eq!(decode_job_poll(&encode_job_poll(3, 17)).unwrap(), (3, 17));
        assert_eq!(
            decode_job_cancel(&encode_job_cancel(4, 18)).unwrap(),
            (4, 18)
        );
        assert!(decode_job_poll(&encode_job_poll(3, 17)[..9]).is_err());
    }

    #[test]
    fn job_reply_roundtrips_bitwise_and_rejects_hostile_counts() {
        let reply = JobReply {
            id: 77,
            snapshot: JobSnapshot {
                job: 5,
                state: JobState::Running,
                error: None,
                batches_done: 2,
                batches_total: 4,
                candidates_done: 8,
                candidates_total: 16,
                evals_done: 1234,
                evals_total: 5000,
                front: vec![
                    fepia_mapping::FrontPoint {
                        index: 3,
                        makespan: 10.5,
                        metric: f64::NAN,
                        heuristic: "annealing".into(),
                        assignment: vec![0, 1, 2, 1],
                    },
                    fepia_mapping::FrontPoint {
                        index: 7,
                        makespan: 12.0,
                        metric: 2.5,
                        heuristic: "robust_greedy".into(),
                        assignment: vec![2, 2, 0, 1],
                    },
                ],
            },
        };
        let bytes = encode_job_reply(&reply);
        let decoded = decode_job_reply(&bytes).unwrap();
        // Canonical encoding: byte equality IS bitwise equality (covers
        // the NaN metric above).
        assert_eq!(encode_job_reply(&decoded), bytes);
        assert_eq!(decoded.id, 77);
        assert_eq!(decoded.snapshot.state, JobState::Running);
        assert_eq!(decoded.snapshot.front.len(), 2);

        // A Failed reply carries its error string.
        let failed = JobReply {
            id: 1,
            snapshot: JobSnapshot {
                state: JobState::Failed,
                error: Some("candidate 3 panicked".into()),
                front: Vec::new(),
                ..reply.snapshot.clone()
            },
        };
        let decoded = decode_job_reply(&encode_job_reply(&failed)).unwrap();
        assert_eq!(
            decoded.snapshot.error.as_deref(),
            Some("candidate 3 panicked")
        );

        // Hostile front count fails typed before allocation: the count is
        // the 8 bytes right before the first point.
        let mut m = bytes.clone();
        let first_point = m.len()
            - 2 * (8 + 8 + 8)
            - (8 + "annealing".len())
            - (8 + "robust_greedy".len())
            - 2 * (8 + 4 * 8);
        m[first_point - 8..first_point].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            decode_job_reply(&m),
            Err(DecodeError::BadLength { .. })
        ));
        // Truncation anywhere is typed, never a panic.
        for cut in 0..bytes.len() {
            assert!(decode_job_reply(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn hostile_lengths_rejected_before_allocation() {
        // A request payload claiming 2^60 origins must fail fast with a
        // typed error, not attempt the allocation.
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        let req = EvalRequest {
            id: 1,
            scenario: Arc::clone(&pool[0]),
            kind: EvalKind::Origins(vec![VecN::zeros(20)]),
        };
        let mut bytes = encode_request(&req);
        // The origins count sits right after the kind tag; find the tag.
        let tag_pos = bytes.len() - (8 + 8 + 20 * 8) - 1;
        assert_eq!(bytes[tag_pos], KIND_ORIGINS);
        bytes[tag_pos + 1..tag_pos + 9].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            decode_request(&bytes),
            Err(DecodeError::BadLength { .. })
        ));
    }
}
