//! The frame layer: length-prefixed, versioned, checksummed.
//!
//! Every message on a fepia-net connection is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"FEPN"
//! 4       1     version = 3
//! 5       1     frame type (1 request, 2 response, 3 error,
//!               4 stats request, 5 stats response, 6 submit job,
//!               7 job status, 8 job result, 9 cancel job)
//! 6       2     reserved, must be 0 (LE)
//! 8       4     payload length in bytes (LE)
//! 12      8     FNV-1a 64 checksum of the payload (LE)
//! 20      8     trace id (LE; 0 = untraced)
//! 28      n     payload
//! ```
//!
//! Version 2 appended the 8-byte trace id to the version-1 header: the id
//! a client minted for the request (see [`fepia_obs::trace`]), echoed
//! verbatim on the response so one JSONL stream stitches client- and
//! server-side spans together. It is metadata, not payload: deliberately
//! *outside* the checksum, so trace plumbing can never turn a valid
//! payload into a checksum failure (a corrupted trace id corrupts
//! attribution, never data).
//!
//! Version 3 keeps the header layout and changes the payloads: requests
//! carry a relative deadline (microseconds, 0 = none), responses carry a
//! disposition byte (full / brownout / deadline-exceeded), and the stats
//! reply grows deadline/brownout counters. A v2 frame against a v3
//! endpoint yields a typed [`DecodeError::UnsupportedVersion`] — never a
//! mis-parse, panic, or hang.
//!
//! Decoding is total: every malformed input maps to a typed
//! [`DecodeError`] — bad magic, unknown version or type, a length that
//! exceeds [`MAX_PAYLOAD`] or the bytes actually present, a checksum
//! mismatch. No input, however corrupt, may panic or mis-parse; the codec
//! fuzz suite at the workspace root holds the layer to that (arbitrary
//! byte mutations of valid frames must surface as typed errors, except in
//! the unchecksummed trace-id bytes, which only ever change attribution).
//!
//! The checksum is not a security boundary — it catches torn writes and
//! corrupted reads (e.g. the `net.write` chaos site truncating a frame
//! mid-payload), turning them into [`DecodeError::ChecksumMismatch`] or
//! [`DecodeError::Truncated`] instead of a mis-parsed payload.

use std::io::{Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FEPN";
/// The one wire-protocol version this build speaks.
pub const VERSION: u8 = 3;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 28;
/// Hard cap on payload size; larger claims are rejected before allocation.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameType {
    /// Client → server: one [`crate::wire::RequestPayload`].
    Request,
    /// Server → client: one successfully evaluated response.
    Response,
    /// Server → client: a typed refusal (overload or invalid request).
    Error,
    /// Client → server: poll the live service/net counters
    /// ([`crate::wire::encode_stats_request`]).
    StatsRequest,
    /// Server → client: one [`crate::wire::StatsReply`].
    StatsResponse,
    /// Client → server: submit an optimizer job
    /// ([`crate::wire::encode_submit_job`]).
    SubmitJob,
    /// Client → server: poll a job's best-so-far snapshot
    /// ([`crate::wire::encode_job_poll`]).
    JobStatus,
    /// Server → client: one [`crate::wire::JobReply`] (the answer to
    /// submit, status, and cancel alike).
    JobResult,
    /// Client → server: cancel a job ([`crate::wire::encode_job_cancel`]).
    CancelJob,
}

impl FrameType {
    fn to_byte(self) -> u8 {
        match self {
            FrameType::Request => 1,
            FrameType::Response => 2,
            FrameType::Error => 3,
            FrameType::StatsRequest => 4,
            FrameType::StatsResponse => 5,
            FrameType::SubmitJob => 6,
            FrameType::JobStatus => 7,
            FrameType::JobResult => 8,
            FrameType::CancelJob => 9,
        }
    }

    fn from_byte(b: u8) -> Result<FrameType, DecodeError> {
        match b {
            1 => Ok(FrameType::Request),
            2 => Ok(FrameType::Response),
            3 => Ok(FrameType::Error),
            4 => Ok(FrameType::StatsRequest),
            5 => Ok(FrameType::StatsResponse),
            6 => Ok(FrameType::SubmitJob),
            7 => Ok(FrameType::JobStatus),
            8 => Ok(FrameType::JobResult),
            9 => Ok(FrameType::CancelJob),
            other => Err(DecodeError::UnknownFrameType(other)),
        }
    }
}

/// One decoded frame: type + trace id + verified payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the payload encodes.
    pub frame_type: FrameType,
    /// Trace id riding the header (0 = untraced). Not covered by the
    /// payload checksum.
    pub trace: u64,
    /// Checksum-verified payload bytes.
    pub payload: Vec<u8>,
}

/// Every way bytes can fail to be a frame (or a payload can fail to be a
/// message). Total and typed: malformed input never panics the decoder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The frame-type byte names no known type.
    UnknownFrameType(u8),
    /// The reserved header field is non-zero (a future extension this
    /// version does not understand).
    NonZeroReserved(u16),
    /// The claimed payload length exceeds [`MAX_PAYLOAD`].
    OversizedPayload {
        /// Claimed length.
        len: u32,
        /// The cap.
        max: u32,
    },
    /// The payload checksum does not match the header's.
    ChecksumMismatch {
        /// Checksum the header claims.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// Fewer bytes are present than the encoding requires.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A tag byte names no known variant of `what`.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u64,
    },
    /// A length field is implausible for the bytes that remain (rejected
    /// before any allocation).
    BadLength {
        /// Which collection was being decoded.
        what: &'static str,
        /// The claimed element count.
        len: u64,
        /// The maximum count the remaining bytes could hold.
        limit: u64,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// Which string field.
        what: &'static str,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?} (want {MAGIC:02x?})"),
            DecodeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {VERSION})"
                )
            }
            DecodeError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            DecodeError::NonZeroReserved(r) => write!(f, "non-zero reserved field {r:#06x}"),
            DecodeError::OversizedPayload { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte cap")
            }
            DecodeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload checksum {actual:#018x} does not match header {expected:#018x}"
            ),
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated input: needed {needed} bytes, got {got}")
            }
            DecodeError::BadTag { what, tag } => write!(f, "bad tag {tag} decoding {what}"),
            DecodeError::BadLength { what, len, limit } => {
                write!(
                    f,
                    "implausible length {len} for {what} (at most {limit} fit)"
                )
            }
            DecodeError::BadUtf8 { what } => write!(f, "invalid UTF-8 in {what}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete payload")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 64 over raw bytes — the frame payload checksum (and the same
/// function the service uses for scenario fingerprints).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Frame {
    /// Builds a frame; panics only if the payload exceeds [`MAX_PAYLOAD`]
    /// (an encoder-side bug, not reachable from network input).
    pub fn new(frame_type: FrameType, payload: Vec<u8>) -> Frame {
        assert!(
            payload.len() <= MAX_PAYLOAD as usize,
            "encoder produced a {}-byte payload over the {MAX_PAYLOAD}-byte cap",
            payload.len()
        );
        Frame {
            frame_type,
            trace: 0,
            payload,
        }
    }

    /// [`Frame::new`] carrying a trace id in the header.
    pub fn with_trace(frame_type: FrameType, trace: u64, payload: Vec<u8>) -> Frame {
        let mut f = Frame::new(frame_type, payload);
        f.trace = trace;
        f
    }

    /// Serializes header + payload into one buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.frame_type.to_byte());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.trace.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes one frame from a complete byte buffer, rejecting trailing
    /// bytes. Total: every malformed input yields a typed [`DecodeError`].
    pub fn decode(bytes: &[u8]) -> Result<Frame, DecodeError> {
        let (header, rest) = decode_header(bytes)?;
        let len = header.payload_len as usize;
        if rest.len() < len {
            return Err(DecodeError::Truncated {
                needed: HEADER_LEN + len,
                got: bytes.len(),
            });
        }
        if rest.len() > len {
            return Err(DecodeError::TrailingBytes {
                remaining: rest.len() - len,
            });
        }
        let payload = &rest[..len];
        let actual = fnv1a(payload);
        if actual != header.checksum {
            return Err(DecodeError::ChecksumMismatch {
                expected: header.checksum,
                actual,
            });
        }
        Ok(Frame {
            frame_type: header.frame_type,
            trace: header.trace,
            payload: payload.to_vec(),
        })
    }
}

/// Validated header fields.
#[derive(Clone, Copy, Debug)]
pub struct FrameHeader {
    /// What the payload encodes.
    pub frame_type: FrameType,
    /// Payload length, already checked against [`MAX_PAYLOAD`].
    pub payload_len: u32,
    /// Claimed payload checksum.
    pub checksum: u64,
    /// Trace id (0 = untraced).
    pub trace: u64,
}

fn decode_header(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    if bytes[4] != VERSION {
        return Err(DecodeError::UnsupportedVersion(bytes[4]));
    }
    let frame_type = FrameType::from_byte(bytes[5])?;
    let reserved = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if reserved != 0 {
        return Err(DecodeError::NonZeroReserved(reserved));
    }
    let payload_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(DecodeError::OversizedPayload {
            len: payload_len,
            max: MAX_PAYLOAD,
        });
    }
    let checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let trace = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    Ok((
        FrameHeader {
            frame_type,
            payload_len,
            checksum,
            trace,
        },
        &bytes[HEADER_LEN..],
    ))
}

/// A frame read failing either at the socket or at the codec.
#[derive(Debug)]
pub enum FrameReadError {
    /// The underlying stream failed (includes clean EOF between frames as
    /// `UnexpectedEof` only when mid-frame; see [`read_frame`]).
    Io(std::io::Error),
    /// The bytes arrived but are not a valid frame.
    Decode(DecodeError),
    /// The stream ended cleanly on a frame boundary (peer closed).
    Closed,
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "io error reading frame: {e}"),
            FrameReadError::Decode(e) => write!(f, "frame decode error: {e}"),
            FrameReadError::Closed => write!(f, "connection closed between frames"),
        }
    }
}

impl std::error::Error for FrameReadError {}

/// Reads exactly one frame from `r`. A clean EOF before the first header
/// byte is [`FrameReadError::Closed`]; an EOF mid-frame is a truncation
/// ([`DecodeError::Truncated`] wrapped in `Decode`). The payload is
/// checksum-verified before being returned.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameReadError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Err(FrameReadError::Closed);
                }
                return Err(FrameReadError::Decode(DecodeError::Truncated {
                    needed: HEADER_LEN,
                    got: filled,
                }));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    // Validate the header before trusting its length to size a buffer.
    let (parsed, _) = decode_header(&header).map_err(FrameReadError::Decode)?;
    let len = parsed.payload_len as usize;
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameReadError::Decode(DecodeError::Truncated {
                    needed: HEADER_LEN + len,
                    got: HEADER_LEN + filled,
                }))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let actual = fnv1a(&payload);
    if actual != parsed.checksum {
        return Err(FrameReadError::Decode(DecodeError::ChecksumMismatch {
            expected: parsed.checksum,
            actual,
        }));
    }
    Ok(Frame {
        frame_type: parsed.frame_type,
        trace: parsed.trace,
        payload,
    })
}

/// Writes one frame (header + payload) and flushes. `trace` rides the
/// header (0 = untraced).
///
/// This is the *blocking, one-frame-at-a-time* path used by the simple
/// client and by tests that speak the protocol by hand. The event-loop
/// server never uses it: it coalesces queued responses in a
/// [`FrameWriter`] and flushes once per writable burst instead of once
/// per frame.
pub fn write_frame(
    w: &mut impl Write,
    frame_type: FrameType,
    trace: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    let frame = Frame::with_trace(frame_type, trace, payload.to_vec());
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Incremental frame decoder for nonblocking sockets.
///
/// Feed whatever bytes `read(2)` produced via [`FrameDecoder::extend`],
/// then pull complete frames with [`FrameDecoder::next_frame`] until it
/// returns `Ok(None)` (more bytes needed). The header is validated before
/// its length field is trusted to size anything, so a hostile length
/// claim is rejected as [`DecodeError::OversizedPayload`] without
/// allocation — exactly like the blocking [`read_frame`].
///
/// A decode error is terminal for the stream: framing is lost, the
/// connection must be dropped.
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Appends freshly read bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing so a long-lived connection does not
        // accumulate consumed prefixes.
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame. Non-zero
    /// at EOF means the peer died mid-frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tries to decode the next complete frame. `Ok(None)` means the
    /// buffer holds only a partial frame — read more and call again.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        // Header validation errors (bad magic, version, type, reserved,
        // oversized length) are real errors even on a partial buffer: the
        // first HEADER_LEN bytes are all it takes to judge them.
        let (header, _) = decode_header(avail)?;
        let len = header.payload_len as usize;
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..HEADER_LEN + len];
        let actual = fnv1a(payload);
        if actual != header.checksum {
            return Err(DecodeError::ChecksumMismatch {
                expected: header.checksum,
                actual,
            });
        }
        let frame = Frame {
            frame_type: header.frame_type,
            trace: header.trace,
            payload: payload.to_vec(),
        };
        self.start += HEADER_LEN + len;
        Ok(Some(frame))
    }
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

/// Identity of one frame queued in a [`FrameWriter`], reported back when
/// its last byte reaches the socket — the hook for `net.write` spans and
/// per-frame accounting without per-frame flushes.
#[derive(Clone, Copy, Debug)]
pub struct QueuedFrame {
    /// What the frame carried.
    pub frame_type: FrameType,
    /// Trace id from its header (0 = untraced).
    pub trace: u64,
    /// Caller-chosen correlation id (the request id for responses).
    pub id: u64,
}

/// Coalescing write buffer for nonblocking sockets.
///
/// Responses completing in one loop iteration are [`FrameWriter::enqueue`]d
/// into a single contiguous buffer, then [`FrameWriter::flush_burst`]
/// pushes as much as the socket accepts in one burst — one syscall
/// sequence per writable event instead of a `write + flush` pair per
/// frame. Frames whose final byte made it out are returned so the caller
/// can emit their `net.write` spans and count frames-per-flush.
pub struct FrameWriter {
    buf: Vec<u8>,
    start: usize,
    /// Absolute count of bytes ever written to the socket.
    written: u64,
    /// Absolute count of bytes ever enqueued.
    enqueued: u64,
    /// Per-frame end offsets (absolute), FIFO.
    markers: std::collections::VecDeque<(u64, QueuedFrame)>,
}

impl FrameWriter {
    /// An empty writer.
    pub fn new() -> FrameWriter {
        FrameWriter {
            buf: Vec::new(),
            start: 0,
            written: 0,
            enqueued: 0,
            markers: std::collections::VecDeque::new(),
        }
    }

    /// Encodes one frame onto the pending buffer. `id` is echoed back in
    /// the frame's [`QueuedFrame`] when it finishes flushing.
    pub fn enqueue(&mut self, frame_type: FrameType, trace: u64, payload: &[u8], id: u64) {
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let frame = Frame::with_trace(frame_type, trace, payload.to_vec());
        let bytes = frame.encode();
        self.enqueued += bytes.len() as u64;
        self.buf.extend_from_slice(&bytes);
        self.markers.push_back((
            self.enqueued,
            QueuedFrame {
                frame_type,
                trace,
                id,
            },
        ));
    }

    /// Bytes not yet accepted by the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Frames not yet fully written.
    pub fn queued_frames(&self) -> usize {
        self.markers.len()
    }

    /// Writes until the socket stops accepting bytes (`WouldBlock`) or the
    /// buffer empties. Returns the frames completed by this burst; an io
    /// error (including a zero-length write) is terminal for the stream.
    pub fn flush_burst(&mut self, w: &mut impl Write) -> std::io::Result<Vec<QueuedFrame>> {
        let mut done = Vec::new();
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.start += n;
                    self.written += n as u64;
                    while let Some(&(end, meta)) = self.markers.front() {
                        if end > self.written {
                            break;
                        }
                        self.markers.pop_front();
                        done.push(meta);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(done)
    }
}

impl Default for FrameWriter {
    fn default() -> Self {
        FrameWriter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = Frame::new(FrameType::Request, vec![1, 2, 3, 250]);
        let bytes = frame.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), frame);
        let mut cursor = std::io::Cursor::new(bytes);
        let read = read_frame(&mut cursor).unwrap();
        assert_eq!(read, frame);
    }

    #[test]
    fn trace_id_rides_the_header() {
        let frame = Frame::with_trace(FrameType::Response, 0xdead_beef_cafe_f00d, vec![7; 5]);
        let bytes = frame.encode();
        assert_eq!(
            u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
            0xdead_beef_cafe_f00d
        );
        let decoded = Frame::decode(&bytes).unwrap();
        assert_eq!(decoded.trace, 0xdead_beef_cafe_f00d);
        assert_eq!(decoded, frame);
        // The trace id is metadata, not payload: flipping its bytes still
        // decodes (with a different id), never a checksum failure.
        let mut m = bytes.clone();
        m[20] ^= 0xff;
        let reattributed = Frame::decode(&m).unwrap();
        assert_eq!(reattributed.payload, frame.payload);
        assert_ne!(reattributed.trace, frame.trace);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = Frame::new(FrameType::Error, Vec::new());
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn header_field_corruption_is_typed() {
        let bytes = Frame::new(FrameType::Response, vec![9; 16]).encode();

        let mut m = bytes.clone();
        m[0] = b'X';
        assert!(matches!(Frame::decode(&m), Err(DecodeError::BadMagic(_))));

        let mut m = bytes.clone();
        m[4] = 9;
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::UnsupportedVersion(9))
        ));

        let mut m = bytes.clone();
        m[5] = 77;
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::UnknownFrameType(77))
        ));

        let mut m = bytes.clone();
        m[6] = 1;
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::NonZeroReserved(1))
        ));

        let mut m = bytes.clone();
        m[HEADER_LEN] ^= 0xff; // first payload byte
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::ChecksumMismatch { .. })
        ));

        let mut m = bytes.clone();
        m[12] ^= 0xff; // checksum byte
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let bytes = Frame::new(FrameType::Request, vec![5; 8]).encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            Frame::decode(&extended),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Frame::new(FrameType::Request, vec![0; 4]).encode();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(DecodeError::OversizedPayload { .. })
        ));
        // The streaming reader must also reject it from the header alone.
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Decode(DecodeError::OversizedPayload { .. }))
        ));
    }

    #[test]
    fn clean_eof_between_frames_is_closed() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Closed)
        ));
    }

    #[test]
    fn incremental_decoder_handles_byte_at_a_time_delivery() {
        let frames = vec![
            Frame::with_trace(FrameType::Request, 7, vec![1, 2, 3]),
            Frame::new(FrameType::Response, Vec::new()),
            Frame::with_trace(FrameType::Error, u64::MAX, vec![9; 100]),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(dec.buffered(), 0, "no partial frame should remain");
    }

    #[test]
    fn incremental_decoder_reports_partial_and_rejects_corruption() {
        let bytes = Frame::new(FrameType::Request, vec![5; 32]).encode();
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..HEADER_LEN + 10]);
        assert!(dec.next_frame().unwrap().is_none(), "mid-frame: need bytes");
        assert_eq!(dec.buffered(), HEADER_LEN + 10);

        // Corrupt magic is judged from the header alone, before the
        // payload arrives.
        let mut dec = FrameDecoder::new();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        dec.extend(&bad[..HEADER_LEN]);
        assert!(matches!(dec.next_frame(), Err(DecodeError::BadMagic(_))));

        // Corrupt payload is a checksum mismatch once complete.
        let mut dec = FrameDecoder::new();
        let mut bad = bytes.clone();
        bad[HEADER_LEN] ^= 0xff;
        dec.extend(&bad);
        assert!(matches!(
            dec.next_frame(),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn incremental_decoder_rejects_oversized_claim_without_payload() {
        let mut bytes = Frame::new(FrameType::Request, vec![0; 4]).encode();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..HEADER_LEN]);
        assert!(matches!(
            dec.next_frame(),
            Err(DecodeError::OversizedPayload { .. })
        ));
    }

    /// A writer that accepts a fixed number of bytes per call, then
    /// `WouldBlock`s — models a socket under backpressure.
    struct Throttled {
        out: Vec<u8>,
        budget: usize,
        per_call: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.budget == 0 {
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.per_call).min(self.budget);
            self.out.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_writer_coalesces_and_reports_completed_frames() {
        let mut fw = FrameWriter::new();
        fw.enqueue(FrameType::Response, 11, &[1; 10], 100);
        fw.enqueue(FrameType::Response, 0, &[2; 20], 101);
        fw.enqueue(FrameType::Error, 13, &[3; 30], 102);
        assert_eq!(fw.queued_frames(), 3);
        let total = fw.pending();
        assert_eq!(total, 3 * HEADER_LEN + 60);

        // First burst: enough for frame 1 plus part of frame 2.
        let mut sock = Throttled {
            out: Vec::new(),
            budget: HEADER_LEN + 10 + 5,
            per_call: 7,
        };
        let done = fw.flush_burst(&mut sock).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 100);
        assert_eq!(done[0].trace, 11);
        assert_eq!(fw.queued_frames(), 2);

        // Second burst: everything else, in one writable window.
        sock.budget = usize::MAX;
        let done = fw.flush_burst(&mut sock).unwrap();
        assert_eq!(
            done.iter().map(|m| m.id).collect::<Vec<_>>(),
            vec![101, 102]
        );
        assert_eq!(fw.pending(), 0);
        assert_eq!(fw.queued_frames(), 0);

        // The bytes on the wire are the three frames, verbatim and in
        // order.
        let mut dec = FrameDecoder::new();
        dec.extend(&sock.out);
        let f1 = dec.next_frame().unwrap().unwrap();
        let f2 = dec.next_frame().unwrap().unwrap();
        let f3 = dec.next_frame().unwrap().unwrap();
        assert_eq!((f1.trace, f1.payload.len()), (11, 10));
        assert_eq!((f2.trace, f2.payload.len()), (0, 20));
        assert_eq!((f3.trace, f3.payload.len()), (13, 30));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frame_writer_zero_write_is_an_error() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut fw = FrameWriter::new();
        fw.enqueue(FrameType::Response, 0, &[1], 1);
        assert_eq!(
            fw.flush_burst(&mut Zero).unwrap_err().kind(),
            std::io::ErrorKind::WriteZero
        );
    }
}
