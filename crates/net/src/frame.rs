//! The frame layer: length-prefixed, versioned, checksummed.
//!
//! Every message on a fepia-net connection is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"FEPN"
//! 4       1     version = 2
//! 5       1     frame type (1 request, 2 response, 3 error,
//!               4 stats request, 5 stats response)
//! 6       2     reserved, must be 0 (LE)
//! 8       4     payload length in bytes (LE)
//! 12      8     FNV-1a 64 checksum of the payload (LE)
//! 20      8     trace id (LE; 0 = untraced)
//! 28      n     payload
//! ```
//!
//! Version 2 (this PR) appends the 8-byte trace id to the version-1
//! header: the id a client minted for the request (see
//! [`fepia_obs::trace`]), echoed verbatim on the response so one JSONL
//! stream stitches client- and server-side spans together. It is metadata,
//! not payload: deliberately *outside* the checksum, so trace plumbing can
//! never turn a valid payload into a checksum failure (a corrupted trace
//! id corrupts attribution, never data).
//!
//! Decoding is total: every malformed input maps to a typed
//! [`DecodeError`] — bad magic, unknown version or type, a length that
//! exceeds [`MAX_PAYLOAD`] or the bytes actually present, a checksum
//! mismatch. No input, however corrupt, may panic or mis-parse; the codec
//! fuzz suite at the workspace root holds the layer to that (arbitrary
//! byte mutations of valid frames must surface as typed errors, except in
//! the unchecksummed trace-id bytes, which only ever change attribution).
//!
//! The checksum is not a security boundary — it catches torn writes and
//! corrupted reads (e.g. the `net.write` chaos site truncating a frame
//! mid-payload), turning them into [`DecodeError::ChecksumMismatch`] or
//! [`DecodeError::Truncated`] instead of a mis-parsed payload.

use std::io::{Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"FEPN";
/// The one wire-protocol version this build speaks.
pub const VERSION: u8 = 2;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 28;
/// Hard cap on payload size; larger claims are rejected before allocation.
pub const MAX_PAYLOAD: u32 = 64 << 20;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameType {
    /// Client → server: one [`crate::wire::RequestPayload`].
    Request,
    /// Server → client: one successfully evaluated response.
    Response,
    /// Server → client: a typed refusal (overload or invalid request).
    Error,
    /// Client → server: poll the live service/net counters
    /// ([`crate::wire::encode_stats_request`]).
    StatsRequest,
    /// Server → client: one [`crate::wire::StatsReply`].
    StatsResponse,
}

impl FrameType {
    fn to_byte(self) -> u8 {
        match self {
            FrameType::Request => 1,
            FrameType::Response => 2,
            FrameType::Error => 3,
            FrameType::StatsRequest => 4,
            FrameType::StatsResponse => 5,
        }
    }

    fn from_byte(b: u8) -> Result<FrameType, DecodeError> {
        match b {
            1 => Ok(FrameType::Request),
            2 => Ok(FrameType::Response),
            3 => Ok(FrameType::Error),
            4 => Ok(FrameType::StatsRequest),
            5 => Ok(FrameType::StatsResponse),
            other => Err(DecodeError::UnknownFrameType(other)),
        }
    }
}

/// One decoded frame: type + trace id + verified payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the payload encodes.
    pub frame_type: FrameType,
    /// Trace id riding the header (0 = untraced). Not covered by the
    /// payload checksum.
    pub trace: u64,
    /// Checksum-verified payload bytes.
    pub payload: Vec<u8>,
}

/// Every way bytes can fail to be a frame (or a payload can fail to be a
/// message). Total and typed: malformed input never panics the decoder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The frame-type byte names no known type.
    UnknownFrameType(u8),
    /// The reserved header field is non-zero (a future extension this
    /// version does not understand).
    NonZeroReserved(u16),
    /// The claimed payload length exceeds [`MAX_PAYLOAD`].
    OversizedPayload {
        /// Claimed length.
        len: u32,
        /// The cap.
        max: u32,
    },
    /// The payload checksum does not match the header's.
    ChecksumMismatch {
        /// Checksum the header claims.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// Fewer bytes are present than the encoding requires.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A tag byte names no known variant of `what`.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u64,
    },
    /// A length field is implausible for the bytes that remain (rejected
    /// before any allocation).
    BadLength {
        /// Which collection was being decoded.
        what: &'static str,
        /// The claimed element count.
        len: u64,
        /// The maximum count the remaining bytes could hold.
        limit: u64,
    },
    /// A string field is not valid UTF-8.
    BadUtf8 {
        /// Which string field.
        what: &'static str,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?} (want {MAGIC:02x?})"),
            DecodeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {VERSION})"
                )
            }
            DecodeError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            DecodeError::NonZeroReserved(r) => write!(f, "non-zero reserved field {r:#06x}"),
            DecodeError::OversizedPayload { len, max } => {
                write!(f, "payload length {len} exceeds the {max}-byte cap")
            }
            DecodeError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload checksum {actual:#018x} does not match header {expected:#018x}"
            ),
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated input: needed {needed} bytes, got {got}")
            }
            DecodeError::BadTag { what, tag } => write!(f, "bad tag {tag} decoding {what}"),
            DecodeError::BadLength { what, len, limit } => {
                write!(
                    f,
                    "implausible length {len} for {what} (at most {limit} fit)"
                )
            }
            DecodeError::BadUtf8 { what } => write!(f, "invalid UTF-8 in {what}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete payload")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 64 over raw bytes — the frame payload checksum (and the same
/// function the service uses for scenario fingerprints).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Frame {
    /// Builds a frame; panics only if the payload exceeds [`MAX_PAYLOAD`]
    /// (an encoder-side bug, not reachable from network input).
    pub fn new(frame_type: FrameType, payload: Vec<u8>) -> Frame {
        assert!(
            payload.len() <= MAX_PAYLOAD as usize,
            "encoder produced a {}-byte payload over the {MAX_PAYLOAD}-byte cap",
            payload.len()
        );
        Frame {
            frame_type,
            trace: 0,
            payload,
        }
    }

    /// [`Frame::new`] carrying a trace id in the header.
    pub fn with_trace(frame_type: FrameType, trace: u64, payload: Vec<u8>) -> Frame {
        let mut f = Frame::new(frame_type, payload);
        f.trace = trace;
        f
    }

    /// Serializes header + payload into one buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.frame_type.to_byte());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.trace.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes one frame from a complete byte buffer, rejecting trailing
    /// bytes. Total: every malformed input yields a typed [`DecodeError`].
    pub fn decode(bytes: &[u8]) -> Result<Frame, DecodeError> {
        let (header, rest) = decode_header(bytes)?;
        let len = header.payload_len as usize;
        if rest.len() < len {
            return Err(DecodeError::Truncated {
                needed: HEADER_LEN + len,
                got: bytes.len(),
            });
        }
        if rest.len() > len {
            return Err(DecodeError::TrailingBytes {
                remaining: rest.len() - len,
            });
        }
        let payload = &rest[..len];
        let actual = fnv1a(payload);
        if actual != header.checksum {
            return Err(DecodeError::ChecksumMismatch {
                expected: header.checksum,
                actual,
            });
        }
        Ok(Frame {
            frame_type: header.frame_type,
            trace: header.trace,
            payload: payload.to_vec(),
        })
    }
}

/// Validated header fields.
#[derive(Clone, Copy, Debug)]
pub struct FrameHeader {
    /// What the payload encodes.
    pub frame_type: FrameType,
    /// Payload length, already checked against [`MAX_PAYLOAD`].
    pub payload_len: u32,
    /// Claimed payload checksum.
    pub checksum: u64,
    /// Trace id (0 = untraced).
    pub trace: u64,
}

fn decode_header(bytes: &[u8]) -> Result<(FrameHeader, &[u8]), DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    if bytes[4] != VERSION {
        return Err(DecodeError::UnsupportedVersion(bytes[4]));
    }
    let frame_type = FrameType::from_byte(bytes[5])?;
    let reserved = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if reserved != 0 {
        return Err(DecodeError::NonZeroReserved(reserved));
    }
    let payload_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(DecodeError::OversizedPayload {
            len: payload_len,
            max: MAX_PAYLOAD,
        });
    }
    let checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let trace = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    Ok((
        FrameHeader {
            frame_type,
            payload_len,
            checksum,
            trace,
        },
        &bytes[HEADER_LEN..],
    ))
}

/// A frame read failing either at the socket or at the codec.
#[derive(Debug)]
pub enum FrameReadError {
    /// The underlying stream failed (includes clean EOF between frames as
    /// `UnexpectedEof` only when mid-frame; see [`read_frame`]).
    Io(std::io::Error),
    /// The bytes arrived but are not a valid frame.
    Decode(DecodeError),
    /// The stream ended cleanly on a frame boundary (peer closed).
    Closed,
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "io error reading frame: {e}"),
            FrameReadError::Decode(e) => write!(f, "frame decode error: {e}"),
            FrameReadError::Closed => write!(f, "connection closed between frames"),
        }
    }
}

impl std::error::Error for FrameReadError {}

/// Reads exactly one frame from `r`. A clean EOF before the first header
/// byte is [`FrameReadError::Closed`]; an EOF mid-frame is a truncation
/// ([`DecodeError::Truncated`] wrapped in `Decode`). The payload is
/// checksum-verified before being returned.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameReadError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Err(FrameReadError::Closed);
                }
                return Err(FrameReadError::Decode(DecodeError::Truncated {
                    needed: HEADER_LEN,
                    got: filled,
                }));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    // Validate the header before trusting its length to size a buffer.
    let (parsed, _) = decode_header(&header).map_err(FrameReadError::Decode)?;
    let len = parsed.payload_len as usize;
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameReadError::Decode(DecodeError::Truncated {
                    needed: HEADER_LEN + len,
                    got: HEADER_LEN + filled,
                }))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let actual = fnv1a(&payload);
    if actual != parsed.checksum {
        return Err(FrameReadError::Decode(DecodeError::ChecksumMismatch {
            expected: parsed.checksum,
            actual,
        }));
    }
    Ok(Frame {
        frame_type: parsed.frame_type,
        trace: parsed.trace,
        payload,
    })
}

/// Writes one frame (header + payload) and flushes. `trace` rides the
/// header (0 = untraced).
pub fn write_frame(
    w: &mut impl Write,
    frame_type: FrameType,
    trace: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    let frame = Frame::with_trace(frame_type, trace, payload.to_vec());
    w.write_all(&frame.encode())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = Frame::new(FrameType::Request, vec![1, 2, 3, 250]);
        let bytes = frame.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), frame);
        let mut cursor = std::io::Cursor::new(bytes);
        let read = read_frame(&mut cursor).unwrap();
        assert_eq!(read, frame);
    }

    #[test]
    fn trace_id_rides_the_header() {
        let frame = Frame::with_trace(FrameType::Response, 0xdead_beef_cafe_f00d, vec![7; 5]);
        let bytes = frame.encode();
        assert_eq!(
            u64::from_le_bytes(bytes[20..28].try_into().unwrap()),
            0xdead_beef_cafe_f00d
        );
        let decoded = Frame::decode(&bytes).unwrap();
        assert_eq!(decoded.trace, 0xdead_beef_cafe_f00d);
        assert_eq!(decoded, frame);
        // The trace id is metadata, not payload: flipping its bytes still
        // decodes (with a different id), never a checksum failure.
        let mut m = bytes.clone();
        m[20] ^= 0xff;
        let reattributed = Frame::decode(&m).unwrap();
        assert_eq!(reattributed.payload, frame.payload);
        assert_ne!(reattributed.trace, frame.trace);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = Frame::new(FrameType::Error, Vec::new());
        assert_eq!(Frame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn header_field_corruption_is_typed() {
        let bytes = Frame::new(FrameType::Response, vec![9; 16]).encode();

        let mut m = bytes.clone();
        m[0] = b'X';
        assert!(matches!(Frame::decode(&m), Err(DecodeError::BadMagic(_))));

        let mut m = bytes.clone();
        m[4] = 9;
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::UnsupportedVersion(9))
        ));

        let mut m = bytes.clone();
        m[5] = 77;
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::UnknownFrameType(77))
        ));

        let mut m = bytes.clone();
        m[6] = 1;
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::NonZeroReserved(1))
        ));

        let mut m = bytes.clone();
        m[HEADER_LEN] ^= 0xff; // first payload byte
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::ChecksumMismatch { .. })
        ));

        let mut m = bytes.clone();
        m[12] ^= 0xff; // checksum byte
        assert!(matches!(
            Frame::decode(&m),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let bytes = Frame::new(FrameType::Request, vec![5; 8]).encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            Frame::decode(&extended),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Frame::new(FrameType::Request, vec![0; 4]).encode();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(DecodeError::OversizedPayload { .. })
        ));
        // The streaming reader must also reject it from the header alone.
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Decode(DecodeError::OversizedPayload { .. }))
        ));
    }

    #[test]
    fn clean_eof_between_frames_is_closed() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameReadError::Closed)
        ));
    }
}
