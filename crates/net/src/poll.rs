//! A minimal, std-only readiness abstraction over `poll(2)`.
//!
//! The event-loop server multiplexes every connection (plus the listener
//! and a wakeup pipe) on one thread. It needs exactly one primitive the
//! standard library does not expose: *block until any of these file
//! descriptors is ready, or until a timeout*. This module provides it
//! with a direct FFI declaration of `poll(2)` — no external crate, no
//! async runtime — consistent with the workspace's std-only rule (std
//! already links libc on every unix target, so the symbol is always
//! present).
//!
//! Pieces:
//!
//! * [`Interest`] / [`Readiness`] — what a registration asks for and what
//!   the kernel reported back (readable / writable / error-or-hangup).
//! * [`PollSet`] — a reusable `pollfd` vector: `clear`, `register` each
//!   fd with its interest, then [`PollSet::wait`] blocks in `poll(2)`
//!   with a computed timeout (`None` = block until an event). `EINTR` is
//!   retried internally, so a wait only returns with events or a timeout.
//! * [`wake_pair`] — a self-pipe built from a nonblocking
//!   `UnixStream::pair`: shard workers call [`Waker::wake`] from any
//!   thread to make the loop's `poll(2)` return; the loop registers the
//!   [`WakeReader`]'s fd for readability and [`WakeReader::drain`]s it on
//!   wakeup. A full pipe means a wakeup is already pending, so `wake` can
//!   never block or fail meaningfully.
//!
//! The loop never sleeps to poll: when nothing is ready it is parked in
//! the kernel inside `poll(2)`, and completions, new connections, new
//! bytes, and shutdown all arrive as readiness events.

use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

// `nfds_t` is `unsigned long` on the unix targets this workspace builds
// for; `timeout` is milliseconds, -1 = infinite.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: i32) -> i32;
}

/// What a registration wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd can accept more bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// What the kernel reported for one registered fd.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Bytes (or EOF) are available to read.
    pub readable: bool,
    /// The socket can accept more bytes.
    pub writable: bool,
    /// Error, hangup, or an invalid fd: the owner should tear the
    /// connection down (a final read usually surfaces the typed cause).
    pub error: bool,
}

impl Readiness {
    /// Any of the three conditions.
    pub fn any(self) -> bool {
        self.readable || self.writable || self.error
    }
}

/// A reusable registration table for one `poll(2)` call per loop
/// iteration. Indices returned by [`PollSet::register`] are positional and
/// valid until the next [`PollSet::clear`].
pub struct PollSet {
    fds: Vec<PollFd>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> PollSet {
        PollSet { fds: Vec::new() }
    }

    /// Drops all registrations (keeps the allocation).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers `fd` with `interest`; returns its slot for
    /// [`PollSet::readiness`] after the next [`PollSet::wait`].
    pub fn register(&mut self, fd: RawFd, interest: Interest) -> usize {
        let mut events = 0i16;
        if interest.readable {
            events |= POLLIN;
        }
        if interest.writable {
            events |= POLLOUT;
        }
        self.fds.push(PollFd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Number of registered fds.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Blocks in `poll(2)` until at least one registered fd is ready or
    /// `timeout` elapses (`None` blocks indefinitely). Returns the number
    /// of ready fds (0 = timeout). `EINTR` is retried; every other error
    /// is returned (and is a programming error, not load).
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs timeout still sleeps, and saturate
            // far-future timeouts at i32::MAX ms (~24 days).
            Some(t) => t
                .as_millis()
                .max(if t.is_zero() { 0 } else { 1 })
                .min(i32::MAX as u128) as i32,
        };
        loop {
            let rc = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::ffi::c_ulong,
                    ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// The readiness the last [`PollSet::wait`] reported for `slot`. An
    /// out-of-range slot (a caller bug, e.g. a stale index across a
    /// `clear`) reports no readiness rather than panicking the event loop.
    pub fn readiness(&self, slot: usize) -> Readiness {
        let r = self.fds.get(slot).map_or(0, |fd| fd.revents);
        Readiness {
            readable: r & (POLLIN | POLLHUP) != 0,
            writable: r & POLLOUT != 0,
            error: r & (POLLERR | POLLHUP | POLLNVAL) != 0,
        }
    }
}

impl Default for PollSet {
    fn default() -> Self {
        PollSet::new()
    }
}

/// The writing end of the loop's self-pipe. Clone-cheap (`try_clone`d
/// stream) and safe to call from any thread.
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Makes the loop's current (or next) [`PollSet::wait`] return. A
    /// full pipe means a wakeup is already pending — that outcome is
    /// success, not an error.
    pub fn wake(&self) {
        // One byte; &UnixStream implements Write.
        let _ = (&self.tx).write(&[1u8]);
    }

    /// A second handle to the same pipe.
    pub fn try_clone(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.tx.try_clone()?,
        })
    }
}

/// The readable end of the loop's self-pipe: register
/// [`WakeReader::as_raw_fd`] for readability and [`WakeReader::drain`]
/// after every wakeup.
pub struct WakeReader {
    rx: UnixStream,
}

impl WakeReader {
    /// The fd to register in the [`PollSet`].
    pub fn as_raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wakeup byte (nonblocking).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => return, // writer gone; nothing more will arrive
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }
}

/// Builds the self-pipe: a nonblocking `UnixStream` pair, write end in
/// the [`Waker`], read end in the [`WakeReader`].
pub fn wake_pair() -> io::Result<(Waker, WakeReader)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReader { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn timeout_elapses_without_events() {
        let (_waker, reader) = wake_pair().unwrap();
        let mut set = PollSet::new();
        set.register(reader.as_raw_fd(), Interest::READ);
        let t0 = Instant::now();
        let n = set.wait(Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0, "no event should be ready");
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert!(!set.readiness(0).any());
    }

    #[test]
    fn wake_makes_poll_return_and_drain_clears() {
        let (waker, reader) = wake_pair().unwrap();
        let loop_thread = std::thread::spawn(move || {
            let mut set = PollSet::new();
            let slot = set.register(reader.as_raw_fd(), Interest::READ);
            let n = set.wait(None).unwrap();
            assert!(n >= 1);
            assert!(set.readiness(slot).readable);
            reader.drain();
            // After draining, a short wait sees nothing.
            set.clear();
            let slot = set.register(reader.as_raw_fd(), Interest::READ);
            let n = set.wait(Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0);
            assert!(!set.readiness(slot).readable);
        });
        std::thread::sleep(Duration::from_millis(20));
        waker.wake();
        loop_thread.join().unwrap();
    }

    #[test]
    fn many_wakes_coalesce() {
        let (waker, reader) = wake_pair().unwrap();
        let cloned = waker.try_clone().unwrap();
        for _ in 0..10_000 {
            // Must never block even when the pipe fills.
            cloned.wake();
        }
        let mut set = PollSet::new();
        let slot = set.register(reader.as_raw_fd(), Interest::READ);
        assert!(set.wait(Some(Duration::from_millis(100))).unwrap() >= 1);
        assert!(set.readiness(slot).readable);
        reader.drain();
        set.clear();
        let slot = set.register(reader.as_raw_fd(), Interest::READ);
        assert_eq!(set.wait(Some(Duration::from_millis(10))).unwrap(), 0);
        assert!(!set.readiness(slot).readable);
    }

    #[test]
    fn tcp_readability_and_writability_are_reported() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        // A fresh socket with an empty send buffer is writable, not
        // readable.
        let mut set = PollSet::new();
        let slot = set.register(server.as_raw_fd(), Interest::READ_WRITE);
        assert!(set.wait(Some(Duration::from_millis(100))).unwrap() >= 1);
        let r = set.readiness(slot);
        assert!(r.writable && !r.readable);

        // Bytes from the peer flip it readable.
        (&client).write_all(b"ping").unwrap();
        set.clear();
        let slot = set.register(server.as_raw_fd(), Interest::READ);
        assert!(set.wait(Some(Duration::from_millis(1000))).unwrap() >= 1);
        assert!(set.readiness(slot).readable);
    }
}
