//! `fepia-net` — a length-prefixed binary TCP wire protocol over the
//! `fepia-serve` evaluation service.
//!
//! PR 4 made robustness evaluation a long-running sharded service; this
//! crate gives it a network boundary, std-only like the rest of the
//! workspace (`std::net`, no async runtime, no serde):
//!
//! * [`frame`] — the byte layer: `FEPN`-tagged versioned header,
//!   length-prefixed checksummed payload, total decoding into typed
//!   [`frame::DecodeError`]s (fuzzed: malformed bytes never panic).
//! * [`wire`] — the payload layer: requests (scenario by value +
//!   `Verdict`/`Origins`/`Moves` kind), bit-exact responses (`f64`s as
//!   IEEE bit patterns), and typed error payloads
//!   ([`wire::WireError::Overloaded`] / [`wire::WireError::Invalid`]).
//! * [`server`] — [`server::NetServer`]: a multi-connection
//!   `TcpListener` front with per-connection reader/writer threads, a
//!   bounded in-flight window per connection (backpressure via TCP flow
//!   control), queue-full mapped to typed `Overloaded` frames, and
//!   graceful drain on shutdown (accepted work is always answered).
//! * [`client`] — [`client::NetClient`]: blocking, with reconnect on
//!   transport failure and deterministic exponential backoff on
//!   `Overloaded`.
//!
//! **Equivalence guarantee.** A response served over TCP is *bitwise*
//! identical to the in-process [`fepia_serve::Service`] answer — every
//! radius, metric bound, and diagnostic field, NaNs and signed zeros
//! included — because the wire format transports `f64`s as bit patterns
//! and the server is a pure transport in front of the same service. The
//! workspace tests assert this frame-for-frame, chaos-off and under
//! `FEPIA_CHAOS`.
//!
//! Observability: `net.*` counters and the `net.request.us` histogram via
//! `fepia-obs`. Fault injection: `net.read` (dropped connections) and
//! `net.write` (torn frames) chaos sites via `fepia-chaos`.

pub mod client;
pub mod frame;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, NetClient, NetError};
pub use frame::{
    DecodeError, Frame, FrameReadError, FrameType, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
pub use server::{NetServer, NetStatsSnapshot, ServerConfig};
pub use wire::{
    decode_error, decode_request, decode_response, encode_error, encode_request, encode_response,
    RequestPayload, WireError,
};
