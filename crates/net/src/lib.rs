//! `fepia-net` — a length-prefixed binary TCP wire protocol over the
//! `fepia-serve` evaluation service.
//!
//! PR 4 made robustness evaluation a long-running sharded service; this
//! crate gives it a network boundary, std-only like the rest of the
//! workspace (`std::net`, no async runtime, no serde):
//!
//! * [`frame`] — the byte layer: `FEPN`-tagged versioned header,
//!   length-prefixed checksummed payload, total decoding into typed
//!   [`frame::DecodeError`]s (fuzzed: malformed bytes never panic).
//! * [`wire`] — the payload layer: requests (scenario by value +
//!   `Verdict`/`Origins`/`Moves` kind), bit-exact responses (`f64`s as
//!   IEEE bit patterns), and typed error payloads
//!   ([`wire::WireError::Overloaded`] / [`wire::WireError::Invalid`]).
//! * [`poll`] — a std-only readiness shim over `poll(2)` plus a
//!   self-pipe waker; the one primitive the event loop needs and the
//!   standard library does not expose.
//! * [`server`] — [`server::NetServer`]: a single-threaded nonblocking
//!   event loop multiplexing every connection, with per-connection
//!   request pipelining (bounded by `max_in_flight`, responses matched
//!   by id out of order), a completion queue + waker hand-off from the
//!   shard workers, coalesced batched writes (one flush per writable
//!   burst), queue-full mapped to typed `Overloaded` frames, and
//!   graceful drain on shutdown (accepted work is always answered).
//! * [`client`] — [`client::NetClient`]: blocking, with reconnect on
//!   transport failure, deterministic exponential backoff on
//!   `Overloaded`, and a pipelined batch mode
//!   ([`client::NetClient::call_pipelined`]) that keeps many requests in
//!   flight on one connection.
//!
//! Wire v3 also carries **optimizer jobs** (`SubmitJob` / `JobStatus` /
//! `JobResult` / `CancelJob` frames): the server fronts a bounded
//! [`fepia_serve::JobTable`] whose seeded heuristic populations accumulate
//! a deterministic makespan × robustness Pareto front, pollable
//! best-so-far mid-flight and cancellable at batch boundaries
//! ([`client::NetClient::submit_job`] and friends).
//!
//! **Equivalence guarantee.** A response served over TCP is *bitwise*
//! identical to the in-process [`fepia_serve::Service`] answer — every
//! radius, metric bound, and diagnostic field, NaNs and signed zeros
//! included — because the wire format transports `f64`s as bit patterns
//! and the server is a pure transport in front of the same service. The
//! workspace tests assert this frame-for-frame, chaos-off and under
//! `FEPIA_CHAOS`.
//!
//! Observability: `net.*` counters and the `net.request.us` histogram via
//! `fepia-obs`. Fault injection: `net.read` (dropped connections) and
//! `net.write` (torn frames) chaos sites via `fepia-chaos`.

pub mod client;
pub mod frame;
pub mod poll;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, NetClient, NetError};
pub use frame::{
    DecodeError, Frame, FrameDecoder, FrameReadError, FrameType, FrameWriter, QueuedFrame,
    HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
pub use server::{NetServer, NetStatsSnapshot, ServerConfig};
pub use wire::{
    decode_error, decode_job_cancel, decode_job_poll, decode_job_reply, decode_request,
    decode_response, decode_submit_job, encode_error, encode_job_cancel, encode_job_poll,
    encode_job_reply, encode_request, encode_request_with_deadline, encode_response,
    encode_submit_job, JobReply, RequestPayload, SubmitJobPayload, WireError,
};
