//! Multi-connection TCP server fronting a [`fepia_serve::Service`].
//!
//! One nonblocking accept loop plus two threads per connection:
//!
//! * **reader** — reads frames, decodes requests, submits them to the
//!   service **non-blocking** ([`Service::submit`]); a shed request is
//!   answered immediately with a typed `Overloaded` error frame instead
//!   of silently stalling the connection. Accepted tickets are handed to
//!   the writer through a `sync_channel` of capacity
//!   [`ServerConfig::max_in_flight`] — the bounded in-flight window. When
//!   the window is full the reader blocks on the hand-off, which stops it
//!   reading further frames: TCP flow control then pushes back on the
//!   client, so a slow consumer degrades gracefully instead of queueing
//!   unboundedly.
//! * **writer** — waits on tickets in request order and writes response
//!   frames, so each connection's replies arrive FIFO (the id echo lets
//!   clients double-check).
//!
//! Shutdown is a graceful drain: the accept loop stops, each
//! connection's read half is shut down (unblocking readers
//! mid-`read_frame`), and writers finish answering every request the
//! service already accepted — accepted work is never dropped.
//!
//! Fault injection: chaos site `net.read` drops the connection before a
//! frame is read; `net.write` tears a response frame (partial write, then
//! close). Both model real network failure at the byte boundary; clients
//! recover by reconnect + retry, and because responses are pure functions
//! of requests, retries are safe. Observability: `net.*` counters and a
//! `net.request.us` latency histogram via `fepia-obs`, plus always-on
//! [`NetStatsSnapshot`] atomics.

use crate::frame::{write_frame, FrameType};
use crate::wire::{
    decode_request, decode_stats_request, encode_error, encode_response, encode_stats_reply,
    StatsReply, WireError,
};
use fepia_serve::{ServeError, Service, ShedReason, Ticket};
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server listens and how much it lets each connection pipeline.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests, examples).
    pub addr: String,
    /// Bounded in-flight window per connection: accepted-but-unanswered
    /// requests a single connection may pipeline before the reader stops
    /// reading (and TCP backpressure reaches the client).
    pub max_in_flight: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_in_flight: 64,
        }
    }
}

/// Always-on server counters (mirrored to `fepia-obs` when enabled).
#[derive(Default)]
struct NetStats {
    connections: AtomicU64,
    frames_read: AtomicU64,
    frames_written: AtomicU64,
    decode_errors: AtomicU64,
    overloaded: AtomicU64,
    invalid: AtomicU64,
    chaos_drops: AtomicU64,
}

/// Point-in-time copy of the server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request frames successfully read and decoded.
    pub frames_read: u64,
    /// Response frames fully written.
    pub frames_written: u64,
    /// Malformed frames received (each closes its connection).
    pub decode_errors: u64,
    /// Requests answered with a typed `Overloaded` error frame.
    pub overloaded: u64,
    /// Requests answered with a typed `Invalid` error frame.
    pub invalid: u64,
    /// Connections dropped / frames torn by the `net.read` / `net.write`
    /// chaos sites.
    pub chaos_drops: u64,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames_read: self.frames_read.load(Ordering::Relaxed),
            frames_written: self.frames_written.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            chaos_drops: self.chaos_drops.load(Ordering::Relaxed),
        }
    }

    fn count(&self, field: &AtomicU64, obs_name: &'static str) {
        field.fetch_add(1, Ordering::Relaxed);
        if fepia_obs::enabled() {
            fepia_obs::global().counter(obs_name).inc();
        }
    }
}

/// What the reader hands the writer, in request order.
enum WriterItem {
    /// An accepted request: wait for the service, then write the response.
    Reply {
        id: u64,
        ticket: Ticket,
        received: Instant,
        /// Trace id echoed on the response frame (0 = untraced).
        trace: u64,
    },
    /// A pre-encoded payload to send as-is (error frames, stats replies).
    Immediate {
        frame_type: FrameType,
        trace: u64,
        payload: Vec<u8>,
    },
}

impl WriterItem {
    fn error(trace: u64, payload: Vec<u8>) -> WriterItem {
        WriterItem::Immediate {
            frame_type: FrameType::Error,
            trace,
            payload,
        }
    }
}

/// A running TCP front for a [`Service`]. Dropping it without calling
/// [`NetServer::shutdown`] aborts the accept loop but detaches connection
/// threads; prefer an explicit shutdown.
pub struct NetServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    stats: Arc<NetStats>,
}

struct Conn {
    stream: TcpStream,
    reader: JoinHandle<()>,
    done: Arc<AtomicBool>,
}

impl NetServer {
    /// Binds the listener and starts the accept loop. The service is
    /// shared: in-process callers and TCP clients can use it concurrently
    /// (and get identical answers).
    pub fn start<A: ToSocketAddrs>(
        service: Arc<Service>,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let accept = {
            let (stop, stats) = (Arc::clone(&stop), Arc::clone(&stats));
            std::thread::spawn(move || accept_loop(listener, service, config, stop, stats))
        };
        Ok(NetServer {
            local_addr,
            stop,
            accept: Some(accept),
            stats,
        })
    }

    /// As [`NetServer::start`] with the address taken from the config.
    pub fn start_default(
        service: Arc<Service>,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let addr = config.addr.clone();
        NetServer::start(service, addr.as_str(), config)
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Current counter values.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// Graceful drain: stop accepting, unblock every reader, let writers
    /// answer all accepted requests, join everything.
    pub fn shutdown(mut self) -> NetStatsSnapshot {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.stats.snapshot()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stats.count(&stats.connections, "net.connections");
                // Blocking I/O from here on; the listener alone is
                // nonblocking.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let done = Arc::new(AtomicBool::new(false));
                let reader = {
                    let (service, stats, done) =
                        (Arc::clone(&service), Arc::clone(&stats), Arc::clone(&done));
                    let stream = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let window = config.max_in_flight.max(1);
                    std::thread::spawn(move || {
                        connection(stream, service, window, stats);
                        done.store(true, Ordering::SeqCst);
                    })
                };
                conns.push(Conn {
                    stream,
                    reader,
                    done,
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        // Reap finished connections so a long-lived server does not
        // accumulate joined-but-retained handles.
        let mut live = Vec::with_capacity(conns.len());
        for c in conns.drain(..) {
            if c.done.load(Ordering::SeqCst) {
                let _ = c.reader.join();
            } else {
                live.push(c);
            }
        }
        conns = live;
    }
    // Drain: unblock readers stuck in read_frame; they drop the writer
    // channel, writers answer everything already accepted, readers join
    // their writers, we join the readers.
    for c in &conns {
        let _ = c.stream.shutdown(Shutdown::Read);
    }
    for c in conns {
        let _ = c.reader.join();
    }
}

/// One connection: reader body; owns and joins the writer thread.
fn connection(stream: TcpStream, service: Arc<Service>, window: usize, stats: Arc<NetStats>) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::sync_channel::<WriterItem>(window);
    let writer = {
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || writer_loop(writer_stream, rx, stats))
    };
    reader_loop(stream, service, tx, &stats);
    let _ = writer.join();
}

fn reader_loop(
    mut stream: TcpStream,
    service: Arc<Service>,
    tx: mpsc::SyncSender<WriterItem>,
    stats: &NetStats,
) {
    loop {
        if fepia_chaos::enabled() && fepia_chaos::should_fire("net.read") {
            // Injected connection drop: the client sees EOF / reset and
            // recovers by reconnecting.
            stats.count(&stats.chaos_drops, "net.chaos.drops");
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let frame = match crate::frame::read_frame(&mut stream) {
            Ok(f) => f,
            Err(crate::frame::FrameReadError::Closed) => return,
            Err(crate::frame::FrameReadError::Io(_)) => return,
            Err(crate::frame::FrameReadError::Decode(e)) => {
                // Malformed bytes: answer with a typed error, then close —
                // the stream position is unrecoverable.
                stats.count(&stats.decode_errors, "net.decode_errors");
                let payload = encode_error(0, &WireError::Invalid(format!("bad frame: {e}")));
                let _ = tx.send(WriterItem::error(0, payload));
                return;
            }
        };
        let decode_started = Instant::now();
        if frame.frame_type == FrameType::StatsRequest {
            // Stats polls are answered at this layer: snapshot the shared
            // service's counters and this server's own, FIFO with replies.
            let item = match decode_stats_request(&frame.payload) {
                Ok(id) => {
                    stats.count(&stats.frames_read, "net.frames.read");
                    let reply = StatsReply {
                        id,
                        shards: service.stats().shards,
                        net: stats.snapshot(),
                    };
                    WriterItem::Immediate {
                        frame_type: FrameType::StatsResponse,
                        trace: frame.trace,
                        payload: encode_stats_reply(&reply),
                    }
                }
                Err(e) => {
                    stats.count(&stats.decode_errors, "net.decode_errors");
                    WriterItem::error(
                        frame.trace,
                        encode_error(0, &WireError::Invalid(format!("bad stats poll: {e}"))),
                    )
                }
            };
            if tx.send(item).is_err() {
                return;
            }
            continue;
        }
        if frame.frame_type != FrameType::Request {
            stats.count(&stats.decode_errors, "net.decode_errors");
            let payload = encode_error(
                0,
                &WireError::Invalid(format!(
                    "unexpected {:?} frame from client",
                    frame.frame_type
                )),
            );
            let _ = tx.send(WriterItem::error(frame.trace, payload));
            return;
        }
        let payload = match decode_request(&frame.payload) {
            Ok(p) => p,
            Err(e) => {
                stats.count(&stats.decode_errors, "net.decode_errors");
                let msg = encode_error(0, &WireError::Invalid(format!("bad request: {e}")));
                let _ = tx.send(WriterItem::error(frame.trace, msg));
                return;
            }
        };
        stats.count(&stats.frames_read, "net.frames.read");
        let id = payload.id;
        let trace = frame.trace;
        let received = Instant::now();
        let req = match payload.into_request() {
            Ok(r) => r,
            Err(msg) => {
                stats.count(&stats.invalid, "net.invalid");
                let payload = encode_error(id, &WireError::Invalid(msg));
                if tx.send(WriterItem::error(trace, payload)).is_err() {
                    return;
                }
                continue;
            }
        };
        if trace != 0 && fepia_obs::trace_enabled() {
            fepia_obs::trace::with_wall(
                fepia_obs::trace::span_event(
                    fepia_obs::TraceId(trace),
                    fepia_obs::trace::stage::NET_READ,
                    id,
                ),
                decode_started,
            )
            .emit();
        }
        let item = match service.submit_traced(req, trace) {
            Ok(ticket) => WriterItem::Reply {
                id,
                ticket,
                received,
                trace,
            },
            Err(ServeError::Overloaded(o)) => {
                stats.count(&stats.overloaded, "net.overloaded");
                WriterItem::error(
                    trace,
                    encode_error(
                        id,
                        &WireError::Overloaded {
                            shard: o.shard as u64,
                            reason: o.reason,
                        },
                    ),
                )
            }
            Err(ServeError::Invalid(msg)) => {
                stats.count(&stats.invalid, "net.invalid");
                WriterItem::error(trace, encode_error(id, &WireError::Invalid(msg)))
            }
            Err(ServeError::Disconnected) => {
                stats.count(&stats.overloaded, "net.overloaded");
                WriterItem::error(
                    trace,
                    encode_error(
                        id,
                        &WireError::Overloaded {
                            shard: 0,
                            reason: ShedReason::ShuttingDown,
                        },
                    ),
                )
            }
        };
        // Blocks when the in-flight window is full — deliberate: this is
        // the per-connection backpressure point.
        if tx.send(item).is_err() {
            return; // writer gone (torn frame / write error); stop reading
        }
    }
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<WriterItem>, stats: Arc<NetStats>) {
    while let Ok(item) = rx.recv() {
        let (frame_type, trace, id, payload) = match item {
            WriterItem::Reply {
                id,
                ticket,
                received,
                trace,
            } => match ticket.wait() {
                Ok(resp) => {
                    debug_assert_eq!(resp.id, id, "service echoed a different id");
                    if fepia_obs::enabled() {
                        fepia_obs::global()
                            .histogram("net.request.us")
                            .record(received.elapsed().as_nanos() as f64 / 1_000.0);
                    }
                    (FrameType::Response, trace, id, encode_response(&resp))
                }
                Err(_) => (
                    FrameType::Error,
                    trace,
                    id,
                    encode_error(
                        id,
                        &WireError::Overloaded {
                            shard: 0,
                            reason: ShedReason::ShuttingDown,
                        },
                    ),
                ),
            },
            WriterItem::Immediate {
                frame_type,
                trace,
                payload,
            } => (frame_type, trace, 0, payload),
        };
        let write_started = Instant::now();
        if fepia_chaos::enabled() && fepia_chaos::should_fire("net.write") {
            // Injected torn frame: write a strict prefix, then sever the
            // connection. The client's decoder reports Truncated and the
            // retry loop reconnects.
            stats.count(&stats.chaos_drops, "net.chaos.drops");
            let full = crate::frame::Frame::with_trace(frame_type, trace, payload).encode();
            let torn = &full[..full.len() / 2];
            let _ = stream.write_all(torn);
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        if write_frame(&mut stream, frame_type, trace, &payload).is_err() {
            return;
        }
        stats.count(&stats.frames_written, "net.frames.written");
        if trace != 0 && frame_type == FrameType::Response && fepia_obs::trace_enabled() {
            fepia_obs::trace::with_wall(
                fepia_obs::trace::span_event(
                    fepia_obs::TraceId(trace),
                    fepia_obs::trace::stage::NET_WRITE,
                    id,
                ),
                write_started,
            )
            .emit();
        }
    }
}
