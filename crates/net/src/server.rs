//! Event-loop TCP server fronting a [`fepia_serve::Service`].
//!
//! One thread, every connection. The I/O plane is a single nonblocking
//! readiness loop over `poll(2)` (see [`crate::poll`]) instead of the
//! original reader/writer thread pair per connection:
//!
//! * **Readiness, never sleeps.** The loop blocks in `poll(2)` on the
//!   listener, every connection socket, and a self-pipe waker. There is
//!   no sleep-based polling anywhere in the hot path: new connections,
//!   new bytes, writable sockets and completed evaluations all arrive as
//!   readiness events.
//! * **Pipelining.** Each connection may have up to
//!   [`ServerConfig::max_in_flight`] requests submitted and unanswered at
//!   once. Responses complete in whatever order the shard workers finish
//!   and are written immediately, correlated by the id echoed in the
//!   response payload (and the trace id echoed in the frame header) —
//!   clients match by id, not by order. When the window fills, the loop
//!   simply stops reading that socket; TCP flow control pushes back on
//!   the client exactly as the old blocking hand-off did.
//! * **Completion queue + waker.** Requests are submitted to the service
//!   with a completion callback
//!   ([`fepia_serve::Service::submit_traced_with`]); the worker's callback
//!   pushes the response onto a mutex-guarded queue and wakes the loop's
//!   poll through the self-pipe. No thread ever blocks on a ticket.
//! * **Coalesced writes.** Responses completing together are encoded into
//!   each connection's [`crate::frame::FrameWriter`] and flushed once per
//!   writable burst — one syscall sequence for many frames, instead of
//!   the old `write + flush` per frame. The `net.loop.frames_per_flush`
//!   histogram records the coalescing the loop actually achieves.
//!
//! Shutdown is a graceful drain, same contract as before: stop accepting
//! and stop reading, answer every request the service already accepted,
//! flush, then close. Accepted work is never dropped.
//!
//! Fault injection is byte-for-byte the old model: chaos site `net.read`
//! drops the connection at a frame boundary; `net.write` tears a response
//! frame (half the bytes, then close). Clients recover by reconnect +
//! retry, safe because responses are pure functions of requests.
//! Observability: the `net.*` counters and `net.request.us` histogram are
//! unchanged; the loop adds `net.loop.iterations`, `net.loop.wakeups`,
//! `net.loop.completions` and `net.loop.frames_per_flush`, plus an
//! always-on high-water mark of per-connection pipeline depth in
//! [`NetStatsSnapshot::max_pipeline_depth`].

use crate::frame::{FrameDecoder, FrameType, FrameWriter};
use crate::poll::{wake_pair, Interest, PollSet, WakeReader, Waker};
use crate::wire::{
    decode_job_cancel, decode_job_poll, decode_request, decode_stats_request, decode_submit_job,
    encode_error, encode_job_reply, encode_response, encode_stats_reply, JobReply, StatsReply,
    WireError,
};
use fepia_serve::{
    EvalResponse, JobError, JobTable, JobTableConfig, RequestBudget, ServeError, Service,
    ShedReason,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server listens, how much it lets each connection pipeline, and
/// where overload admission control kicks in.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests, examples).
    pub addr: String,
    /// Bounded in-flight window per connection: submitted-but-unanswered
    /// requests a single connection may pipeline before the loop stops
    /// reading it (and TCP backpressure reaches the client).
    pub max_in_flight: usize,
    /// Global brownout threshold: when the requests in flight across *all*
    /// connections reach this count, newly admitted requests carry a
    /// brownout hint — workers answer them at budgeted precision (certified
    /// `Bounded` intervals for numeric features) instead of queueing full
    /// evaluations the server cannot keep up with. `usize::MAX` disables.
    pub brownout_in_flight: usize,
    /// Global shed threshold (must be ≥ `brownout_in_flight`): at this many
    /// requests in flight the server answers with a typed `Overloaded`
    /// error frame without touching the service. Brownout degrades answer
    /// precision first; shedding availability is the last resort.
    /// `usize::MAX` disables.
    pub shed_in_flight: usize,
    /// Aggregate in-flight-time brownout threshold: when the summed age of
    /// every in-flight request (maintained incrementally, O(1) per event)
    /// exceeds this, new admissions brown out even below the count
    /// threshold — a few very old requests signal overload as surely as
    /// many young ones. `Duration::ZERO` disables.
    pub brownout_in_flight_time: Duration,
    /// Sizing for the optimizer-job table behind the `SubmitJob` /
    /// `JobStatus` / `CancelJob` frames (bounded concurrent jobs, finished-
    /// job retention, default worker threads).
    pub jobs: JobTableConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_in_flight: 64,
            // Admission control is opt-in: defaults keep the server
            // byte-identical to the pre-brownout protocol under any load
            // the per-connection windows admit.
            brownout_in_flight: usize::MAX,
            shed_in_flight: usize::MAX,
            brownout_in_flight_time: Duration::ZERO,
            jobs: JobTableConfig::default(),
        }
    }
}

/// Pending outbound bytes above which the loop stops reading a connection
/// (a slow consumer must drain before it may submit more work).
const WRITE_HIGH_WATER: usize = 1 << 20;

/// Always-on server counters (mirrored to `fepia-obs` when enabled).
#[derive(Default)]
struct NetStats {
    connections: AtomicU64,
    frames_read: AtomicU64,
    frames_written: AtomicU64,
    decode_errors: AtomicU64,
    overloaded: AtomicU64,
    invalid: AtomicU64,
    chaos_drops: AtomicU64,
    max_pipeline_depth: AtomicU64,
    admission_brownout: AtomicU64,
    admission_shed: AtomicU64,
}

/// Point-in-time copy of the server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request frames successfully read and decoded.
    pub frames_read: u64,
    /// Response frames fully written.
    pub frames_written: u64,
    /// Malformed frames received (each closes its connection).
    pub decode_errors: u64,
    /// Requests answered with a typed `Overloaded` error frame.
    pub overloaded: u64,
    /// Requests answered with a typed `Invalid` error frame.
    pub invalid: u64,
    /// Connections dropped / frames torn by the `net.read` / `net.write`
    /// chaos sites.
    pub chaos_drops: u64,
    /// High-water mark of requests simultaneously in flight on one
    /// connection — direct evidence of pipelining depth.
    pub max_pipeline_depth: u64,
    /// Requests admitted with a brownout hint because the global
    /// in-flight count or in-flight-time crossed the brownout threshold.
    pub admission_brownout: u64,
    /// Requests refused with a typed `Overloaded` frame at the global shed
    /// threshold, without reaching the service.
    pub admission_shed: u64,
}

impl NetStats {
    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames_read: self.frames_read.load(Ordering::Relaxed),
            frames_written: self.frames_written.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            chaos_drops: self.chaos_drops.load(Ordering::Relaxed),
            max_pipeline_depth: self.max_pipeline_depth.load(Ordering::Relaxed),
            admission_brownout: self.admission_brownout.load(Ordering::Relaxed),
            admission_shed: self.admission_shed.load(Ordering::Relaxed),
        }
    }

    fn count(&self, field: &AtomicU64, obs_name: &'static str) {
        field.fetch_add(1, Ordering::Relaxed);
        if fepia_obs::enabled() {
            fepia_obs::global().counter(obs_name).inc();
        }
    }

    fn observe_depth(&self, depth: usize) {
        self.max_pipeline_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }
}

/// A completed evaluation traveling from a shard worker back to the loop.
struct Done {
    /// Connection slot the request arrived on.
    slot: usize,
    /// Slot generation at submit time; a stale generation means the
    /// connection closed (and possibly the slot was reused) — the
    /// response is dropped, matching the old abandoned-ticket semantics.
    gen: u64,
    trace: u64,
    received: Instant,
    resp: EvalResponse,
}

/// A running TCP front for a [`Service`]. Dropping it without calling
/// [`NetServer::shutdown`] performs the same graceful drain.
pub struct NetServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    loop_thread: Option<JoinHandle<()>>,
    stats: Arc<NetStats>,
    jobs: Arc<JobTable>,
}

impl NetServer {
    /// Binds the listener and starts the event loop. The service is
    /// shared: in-process callers and TCP clients can use it concurrently
    /// (and get identical answers).
    pub fn start<A: ToSocketAddrs>(
        service: Arc<Service>,
        addr: A,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let jobs = Arc::new(JobTable::new(config.jobs.clone()));
        let (waker, wake_rx) = wake_pair()?;
        assert!(
            config.brownout_in_flight <= config.shed_in_flight,
            "brownout threshold {} must not exceed shed threshold {}: precision degrades before availability",
            config.brownout_in_flight,
            config.shed_in_flight
        );
        let loop_thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let jobs = Arc::clone(&jobs);
            let waker = waker.try_clone()?;
            let config = config.clone();
            std::thread::Builder::new()
                .name("fepia-net-loop".to_string())
                .spawn(move || {
                    EventLoop::new(listener, service, config, stop, stats, jobs, waker, wake_rx)
                        .run()
                })?
        };
        Ok(NetServer {
            local_addr,
            stop,
            waker,
            loop_thread: Some(loop_thread),
            stats,
            jobs,
        })
    }

    /// As [`NetServer::start`] with the address taken from the config.
    pub fn start_default(
        service: Arc<Service>,
        config: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let addr = config.addr.clone();
        NetServer::start(service, addr.as_str(), config)
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Current counter values.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// The optimizer-job table behind the `SubmitJob` / `JobStatus` /
    /// `CancelJob` frames. Shared: in-process callers and TCP clients see
    /// the same jobs.
    pub fn jobs(&self) -> &Arc<JobTable> {
        &self.jobs
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
    }

    /// Graceful drain: stop accepting and reading, answer every request
    /// the service already accepted, flush, close, join the loop.
    pub fn shutdown(mut self) -> NetStatsSnapshot {
        self.stop();
        self.stats.snapshot()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Per-connection state in the loop's slab.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    writer: FrameWriter,
    /// Requests submitted to the service and not yet answered.
    in_flight: usize,
    /// No more bytes will be read (EOF, fatal input, or draining).
    read_closed: bool,
    /// Tear down now, discarding anything still pending.
    dead: bool,
    /// Guards completions against slot reuse.
    gen: u64,
}

impl Conn {
    /// Finished: nothing in flight, nothing to write, nothing to read.
    fn drained(&self) -> bool {
        self.dead || (self.read_closed && self.in_flight == 0 && self.writer.pending() == 0)
    }
}

/// What each registered poll slot maps back to.
enum PollTarget {
    WakePipe,
    Listener,
    Conn(usize),
}

struct EventLoop {
    listener: TcpListener,
    service: Arc<Service>,
    jobs: Arc<JobTable>,
    window: usize,
    brownout_at: usize,
    shed_at: usize,
    brownout_busy_ns: u128,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    waker: Waker,
    wake_rx: WakeReader,
    completions: Arc<Mutex<VecDeque<Done>>>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    /// Admission epoch for the incremental in-flight-time account.
    epoch: Instant,
    /// Requests submitted to the service and not yet completed, across all
    /// connections.
    in_flight_global: usize,
    /// Sum of admission timestamps (ns since `epoch`) of every in-flight
    /// request. Total in-flight time at instant `t` is
    /// `in_flight_global * t − admitted_sum_ns` — O(1) to maintain and to
    /// query, no per-request scan.
    admitted_sum_ns: u128,
}

impl EventLoop {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: TcpListener,
        service: Arc<Service>,
        config: ServerConfig,
        stop: Arc<AtomicBool>,
        stats: Arc<NetStats>,
        jobs: Arc<JobTable>,
        waker: Waker,
        wake_rx: WakeReader,
    ) -> EventLoop {
        EventLoop {
            listener,
            service,
            jobs,
            window: config.max_in_flight.max(1),
            brownout_at: config.brownout_in_flight,
            shed_at: config.shed_in_flight,
            brownout_busy_ns: config.brownout_in_flight_time.as_nanos(),
            stop,
            stats,
            waker,
            wake_rx,
            completions: Arc::new(Mutex::new(VecDeque::new())),
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            epoch: Instant::now(),
            in_flight_global: 0,
            admitted_sum_ns: 0,
        }
    }

    fn run(mut self) {
        let mut poll = PollSet::new();
        let mut targets: Vec<PollTarget> = Vec::new();
        loop {
            if fepia_obs::enabled() {
                fepia_obs::global().counter("net.loop.iterations").inc();
            }
            // 1. Deliver finished evaluations into their connections'
            //    write buffers (drops stale-generation responses).
            self.drain_completions();

            // 2. Push bytes: one coalesced flush burst per connection with
            //    pending output.
            for slot in 0..self.conns.len() {
                self.flush_conn(slot);
            }

            // 3. On shutdown, enter drain mode *before* reaping: stop
            //    reading everywhere so idle connections count as drained.
            let stopping = self.stop.load(Ordering::SeqCst);
            if stopping {
                for conn in self.conns.iter_mut().flatten() {
                    if !conn.read_closed {
                        conn.read_closed = true;
                        let _ = conn.stream.shutdown(Shutdown::Read);
                    }
                }
            }

            // 4. Reap connections that finished draining or died.
            for slot in 0..self.conns.len() {
                let done = matches!(&self.conns[slot], Some(c) if c.drained());
                if done {
                    self.close_conn(slot);
                }
            }
            if stopping && self.conns.iter().all(Option::is_none) {
                return;
            }

            // 5. Build this iteration's poll set from current interest.
            poll.clear();
            targets.clear();
            poll.register(self.wake_rx.as_raw_fd(), Interest::READ);
            targets.push(PollTarget::WakePipe);
            if !stopping {
                poll.register(self.listener.as_raw_fd(), Interest::READ);
                targets.push(PollTarget::Listener);
            }
            for (slot, conn) in self.conns.iter().enumerate() {
                let Some(conn) = conn else { continue };
                let wants_read = !conn.read_closed
                    && conn.in_flight < self.window
                    && conn.writer.pending() < WRITE_HIGH_WATER;
                let wants_write = conn.writer.pending() > 0;
                if wants_read || wants_write {
                    poll.register(
                        conn.stream.as_raw_fd(),
                        Interest {
                            readable: wants_read,
                            writable: wants_write,
                        },
                    );
                    targets.push(PollTarget::Conn(slot));
                } else if conn.in_flight > 0 {
                    // Window full (or output backlogged): woken by the
                    // completion pipe, not this socket.
                    continue;
                }
            }

            // 6. Park in the kernel until something is ready. No timeout
            //    and no sleep: every state change arrives as readiness
            //    (the waker covers completions and shutdown).
            if poll.wait(None).is_err() {
                return; // EBADF etc. — unrecoverable programming error
            }

            // 7. Dispatch readiness.
            for (idx, target) in targets.iter().enumerate() {
                let ready = poll.readiness(idx);
                if !ready.any() {
                    continue;
                }
                match target {
                    PollTarget::WakePipe => {
                        self.wake_rx.drain();
                        if fepia_obs::enabled() {
                            fepia_obs::global().counter("net.loop.wakeups").inc();
                        }
                    }
                    PollTarget::Listener => self.accept_burst(),
                    PollTarget::Conn(slot) => {
                        let slot = *slot;
                        if ready.readable {
                            self.read_conn(slot);
                        }
                        // Writable progress is made in step 2 next
                        // iteration; an error readiness with nothing
                        // readable means the peer is gone.
                        if ready.error && !ready.readable {
                            if let Some(conn) = &mut self.conns[slot] {
                                conn.dead = true;
                            }
                        }
                    }
                }
            }

            // 8. The window may have freed up (completions) while bytes
            //    already sit decoded in a connection's backlog: process
            //    them without waiting for more socket readability.
            if !stopping {
                for slot in 0..self.conns.len() {
                    if self.conns[slot].is_some() {
                        self.process_frames(slot);
                    }
                }
            }
        }
    }

    /// Nanoseconds between the loop epoch and an admission instant — the
    /// unit of the incremental in-flight-time account. Submit and
    /// completion both derive it from the same `Instant`, so the sum
    /// returns to exactly zero when the server drains.
    fn admitted_ns(&self, received: Instant) -> u128 {
        received.saturating_duration_since(self.epoch).as_nanos()
    }

    /// Accepts until the listener would block.
    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.stats.count(&self.stats.connections, "net.connections");
                    self.next_gen += 1;
                    let conn = Conn {
                        stream,
                        decoder: FrameDecoder::new(),
                        writer: FrameWriter::new(),
                        in_flight: 0,
                        read_closed: false,
                        dead: false,
                        gen: self.next_gen,
                    };
                    if let Some(slot) = self.free.pop() {
                        self.conns[slot] = Some(conn);
                    } else {
                        self.conns.push(Some(conn));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Pulls every completed response off the queue into its connection's
    /// write buffer.
    fn drain_completions(&mut self) {
        loop {
            // Take one batch under the lock, release before encoding.
            let batch: Vec<Done> = {
                let mut q = self.completions.lock().unwrap_or_else(|p| p.into_inner());
                if q.is_empty() {
                    return;
                }
                q.drain(..).collect()
            };
            for done in batch {
                if fepia_obs::enabled() {
                    fepia_obs::global().counter("net.loop.completions").inc();
                }
                // Global admission accounting: every submitted request
                // completes exactly once, whether or not its connection
                // still exists.
                self.in_flight_global = self.in_flight_global.saturating_sub(1);
                self.admitted_sum_ns = self
                    .admitted_sum_ns
                    .saturating_sub(self.admitted_ns(done.received));
                let alive = matches!(&self.conns[done.slot], Some(c) if c.gen == done.gen);
                if !alive {
                    continue; // connection closed while the eval ran
                }
                if fepia_obs::enabled() {
                    fepia_obs::global()
                        .histogram("net.request.us")
                        .record(done.received.elapsed().as_nanos() as f64 / 1_000.0);
                }
                let payload = encode_response(&done.resp);
                self.enqueue_frame(
                    done.slot,
                    FrameType::Response,
                    done.trace,
                    &payload,
                    done.resp.id,
                );
                if let Some(conn) = &mut self.conns[done.slot] {
                    conn.in_flight -= 1;
                }
            }
        }
    }

    /// Queues one outbound frame on a connection, firing the `net.write`
    /// chaos site: an injected tear writes half of this frame's bytes
    /// (after whatever was already queued) and severs the connection.
    fn enqueue_frame(
        &mut self,
        slot: usize,
        frame_type: FrameType,
        trace: u64,
        payload: &[u8],
        id: u64,
    ) {
        let Some(conn) = &mut self.conns[slot] else {
            return;
        };
        if conn.dead {
            return;
        }
        if fepia_chaos::enabled() && fepia_chaos::should_fire("net.write") {
            self.stats.count(&self.stats.chaos_drops, "net.chaos.drops");
            let full =
                crate::frame::Frame::with_trace(frame_type, trace, payload.to_vec()).encode();
            let torn = &full[..full.len() / 2];
            // Best effort: push earlier queued frames, then the strict
            // prefix, then sever. The client decodes Truncated and its
            // retry loop reconnects.
            let _ = conn.writer.flush_burst(&mut conn.stream);
            let mut off = 0;
            while off < torn.len() {
                match conn.stream.write(&torn[off..]) {
                    Ok(0) => break,
                    Ok(n) => off += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break, // WouldBlock included: the tear stands
                }
            }
            let _ = conn.stream.shutdown(Shutdown::Both);
            conn.dead = true;
            return;
        }
        conn.writer.enqueue(frame_type, trace, payload, id);
    }

    /// One coalesced write burst on a connection; emits `net.write` spans
    /// and per-frame counters for everything the burst completed.
    fn flush_conn(&mut self, slot: usize) {
        let Some(conn) = &mut self.conns[slot] else {
            return;
        };
        if conn.dead || conn.writer.pending() == 0 {
            return;
        }
        let burst_started = Instant::now();
        match conn.writer.flush_burst(&mut conn.stream) {
            Ok(done) => {
                if done.is_empty() {
                    return;
                }
                if fepia_obs::enabled() {
                    fepia_obs::global()
                        .histogram("net.loop.frames_per_flush")
                        .record(done.len() as f64);
                }
                for frame in done {
                    self.stats
                        .count(&self.stats.frames_written, "net.frames.written");
                    if frame.trace != 0
                        && frame.frame_type == FrameType::Response
                        && fepia_obs::trace_enabled()
                    {
                        fepia_obs::trace::with_wall(
                            fepia_obs::trace::span_event(
                                fepia_obs::TraceId(frame.trace),
                                fepia_obs::trace::stage::NET_WRITE,
                                frame.id,
                            ),
                            burst_started,
                        )
                        .emit();
                    }
                }
            }
            Err(_) => {
                // The socket is broken; anything unanswered is lost the
                // same way the old writer thread lost it.
                if let Some(conn) = &mut self.conns[slot] {
                    conn.dead = true;
                }
            }
        }
    }

    /// Reads until the socket would block (or EOF / error), then decodes
    /// and processes as many complete frames as the window allows.
    fn read_conn(&mut self, slot: usize) {
        let mut buf = [0u8; 64 * 1024];
        loop {
            let Some(conn) = &mut self.conns[slot] else {
                return;
            };
            if conn.read_closed || conn.dead {
                return;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_closed = true;
                    if conn.decoder.buffered() > 0 {
                        // Peer died mid-frame: same typed outcome the old
                        // blocking reader produced for a truncated frame.
                        self.stats
                            .count(&self.stats.decode_errors, "net.decode_errors");
                    }
                    break;
                }
                Ok(n) => {
                    conn.decoder.extend(&buf[..n]);
                    // Decode eagerly so a full window stops the read loop
                    // (backpressure) instead of buffering unboundedly.
                    self.process_frames(slot);
                    let Some(conn) = &self.conns[slot] else {
                        return;
                    };
                    if conn.read_closed
                        || conn.dead
                        || conn.in_flight >= self.window
                        || conn.writer.pending() >= WRITE_HIGH_WATER
                    {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        self.process_frames(slot);
    }

    /// Decodes and handles buffered frames while the pipeline window has
    /// room. Fires the `net.read` chaos site once per decoded frame.
    fn process_frames(&mut self, slot: usize) {
        loop {
            let Some(conn) = &mut self.conns[slot] else {
                return;
            };
            if conn.dead || conn.in_flight >= self.window {
                return;
            }
            let frame = match conn.decoder.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => return,
                Err(e) => {
                    // Malformed bytes: answer with a typed error, then
                    // close — the stream position is unrecoverable. Drop
                    // the poisoned buffer so a later decode pass (window
                    // freeing up, main-loop catch-up) cannot re-decode the
                    // same bytes and emit the error frame twice.
                    self.stats
                        .count(&self.stats.decode_errors, "net.decode_errors");
                    conn.read_closed = true;
                    conn.decoder = FrameDecoder::new();
                    let payload = encode_error(0, &WireError::Invalid(format!("bad frame: {e}")));
                    self.enqueue_frame(slot, FrameType::Error, 0, &payload, 0);
                    return;
                }
            };
            if fepia_chaos::enabled() && fepia_chaos::should_fire("net.read") {
                // Injected connection drop: the client sees EOF / reset
                // and recovers by reconnecting.
                self.stats.count(&self.stats.chaos_drops, "net.chaos.drops");
                let _ = conn.stream.shutdown(Shutdown::Both);
                conn.dead = true;
                return;
            }
            self.handle_frame(slot, frame);
        }
    }

    /// Routes one decoded frame: eval request, stats poll, or protocol
    /// violation.
    fn handle_frame(&mut self, slot: usize, frame: crate::frame::Frame) {
        let decode_started = Instant::now();
        match frame.frame_type {
            FrameType::StatsRequest => {
                match decode_stats_request(&frame.payload) {
                    Ok(id) => {
                        self.stats.count(&self.stats.frames_read, "net.frames.read");
                        let reply = StatsReply {
                            id,
                            shards: self.service.stats().shards,
                            net: self.stats.snapshot(),
                        };
                        let payload = encode_stats_reply(&reply);
                        self.enqueue_frame(
                            slot,
                            FrameType::StatsResponse,
                            frame.trace,
                            &payload,
                            id,
                        );
                    }
                    Err(e) => {
                        self.stats
                            .count(&self.stats.decode_errors, "net.decode_errors");
                        let payload =
                            encode_error(0, &WireError::Invalid(format!("bad stats poll: {e}")));
                        self.enqueue_frame(slot, FrameType::Error, frame.trace, &payload, 0);
                    }
                };
            }
            FrameType::Request => {
                let payload = match decode_request(&frame.payload) {
                    Ok(p) => p,
                    Err(e) => {
                        self.stats
                            .count(&self.stats.decode_errors, "net.decode_errors");
                        if let Some(conn) = &mut self.conns[slot] {
                            conn.read_closed = true;
                        }
                        let msg = encode_error(0, &WireError::Invalid(format!("bad request: {e}")));
                        self.enqueue_frame(slot, FrameType::Error, frame.trace, &msg, 0);
                        return;
                    }
                };
                self.stats.count(&self.stats.frames_read, "net.frames.read");
                let id = payload.id;
                let deadline_us = payload.deadline_us;
                let trace = frame.trace;
                let received = Instant::now();

                // Admission control, *before* the (allocating) semantic
                // validation: shed at the hard threshold, hint brownout at
                // the soft one. Precision degrades before availability.
                if self.in_flight_global >= self.shed_at {
                    self.stats
                        .count(&self.stats.admission_shed, "net.admission.shed");
                    self.stats.count(&self.stats.overloaded, "net.overloaded");
                    if trace != 0 && fepia_obs::trace_enabled() {
                        fepia_obs::trace::with_wall(
                            fepia_obs::trace::span_event(
                                fepia_obs::TraceId(trace),
                                fepia_obs::trace::stage::SERVE_SHED,
                                id,
                            ),
                            received,
                        )
                        .field("cause", "admission")
                        .emit();
                    }
                    let payload = encode_error(
                        id,
                        &WireError::Overloaded {
                            shard: 0,
                            reason: ShedReason::QueueFull,
                        },
                    );
                    self.enqueue_frame(slot, FrameType::Error, trace, &payload, id);
                    return;
                }
                let busy_ns = (self.in_flight_global as u128 * self.admitted_ns(received))
                    .saturating_sub(self.admitted_sum_ns);
                let brownout_hint = self.in_flight_global >= self.brownout_at
                    || (self.brownout_busy_ns > 0 && busy_ns >= self.brownout_busy_ns);
                if brownout_hint {
                    self.stats
                        .count(&self.stats.admission_brownout, "net.admission.brownout");
                }
                let mut budget = RequestBudget {
                    brownout: brownout_hint,
                    ..RequestBudget::default()
                };
                if deadline_us > 0 {
                    budget.deadline = Some(Duration::from_micros(deadline_us));
                }

                let req = match payload.into_request() {
                    Ok(r) => r,
                    Err(msg) => {
                        self.stats.count(&self.stats.invalid, "net.invalid");
                        let payload = encode_error(id, &WireError::Invalid(msg));
                        self.enqueue_frame(slot, FrameType::Error, trace, &payload, id);
                        return;
                    }
                };
                if trace != 0 && fepia_obs::trace_enabled() {
                    fepia_obs::trace::with_wall(
                        fepia_obs::trace::span_event(
                            fepia_obs::TraceId(trace),
                            fepia_obs::trace::stage::NET_READ,
                            id,
                        ),
                        decode_started,
                    )
                    .emit();
                }
                let gen = match &self.conns[slot] {
                    Some(c) => c.gen,
                    None => return,
                };
                let completions = Arc::clone(&self.completions);
                let waker = match self.waker.try_clone() {
                    Ok(w) => w,
                    Err(_) => return,
                };
                let submit =
                    self.service
                        .submit_traced_budget_with(req, trace, budget, move |resp| {
                            let mut q = completions.lock().unwrap_or_else(|p| p.into_inner());
                            q.push_back(Done {
                                slot,
                                gen,
                                trace,
                                received,
                                resp,
                            });
                            drop(q);
                            waker.wake();
                        });
                match submit {
                    Ok(_shard) => {
                        self.in_flight_global += 1;
                        self.admitted_sum_ns += self.admitted_ns(received);
                        if let Some(conn) = &mut self.conns[slot] {
                            conn.in_flight += 1;
                            self.stats.observe_depth(conn.in_flight);
                        }
                    }
                    Err(ServeError::Overloaded(o)) => {
                        self.stats.count(&self.stats.overloaded, "net.overloaded");
                        let payload = encode_error(
                            id,
                            &WireError::Overloaded {
                                shard: o.shard as u64,
                                reason: o.reason,
                            },
                        );
                        self.enqueue_frame(slot, FrameType::Error, trace, &payload, id);
                    }
                    Err(ServeError::Invalid(msg)) => {
                        self.stats.count(&self.stats.invalid, "net.invalid");
                        let payload = encode_error(id, &WireError::Invalid(msg));
                        self.enqueue_frame(slot, FrameType::Error, trace, &payload, id);
                    }
                    Err(ServeError::Disconnected) => {
                        self.stats.count(&self.stats.overloaded, "net.overloaded");
                        let payload = encode_error(
                            id,
                            &WireError::Overloaded {
                                shard: 0,
                                reason: ShedReason::ShuttingDown,
                            },
                        );
                        self.enqueue_frame(slot, FrameType::Error, trace, &payload, id);
                    }
                }
            }
            // Job-table operations are handled inline: submit spawns a
            // runner thread, status clones a snapshot, cancel flips a flag —
            // none blocks the loop on evaluation work.
            FrameType::SubmitJob => {
                let payload = match decode_submit_job(&frame.payload) {
                    Ok(p) => p,
                    Err(e) => {
                        self.stats
                            .count(&self.stats.decode_errors, "net.decode_errors");
                        if let Some(conn) = &mut self.conns[slot] {
                            conn.read_closed = true;
                        }
                        let msg =
                            encode_error(0, &WireError::Invalid(format!("bad job submit: {e}")));
                        self.enqueue_frame(slot, FrameType::Error, frame.trace, &msg, 0);
                        return;
                    }
                };
                self.stats.count(&self.stats.frames_read, "net.frames.read");
                let id = payload.id;
                let spec = match payload.into_spec() {
                    Ok(s) => s,
                    Err(msg) => {
                        self.stats.count(&self.stats.invalid, "net.invalid");
                        let payload = encode_error(id, &WireError::Invalid(msg));
                        self.enqueue_frame(slot, FrameType::Error, frame.trace, &payload, id);
                        return;
                    }
                };
                match self.jobs.submit_traced(spec, frame.trace) {
                    // The submit answer is the job's first snapshot — the
                    // same shape every later poll returns. (With a zero
                    // retention bound an instant job can already be evicted;
                    // that surfaces as the same typed refusal a late poll
                    // would get.)
                    Ok(job) => match self.jobs.status(job) {
                        Ok(snapshot) => {
                            let payload = encode_job_reply(&JobReply { id, snapshot });
                            self.enqueue_frame(
                                slot,
                                FrameType::JobResult,
                                frame.trace,
                                &payload,
                                id,
                            );
                        }
                        Err(err) => self.refuse_job(slot, frame.trace, id, err),
                    },
                    Err(err) => self.refuse_job(slot, frame.trace, id, err),
                }
            }
            FrameType::JobStatus | FrameType::CancelJob => {
                let cancel = frame.frame_type == FrameType::CancelJob;
                let decoded = if cancel {
                    decode_job_cancel(&frame.payload)
                } else {
                    decode_job_poll(&frame.payload)
                };
                let (id, job) = match decoded {
                    Ok(pair) => pair,
                    Err(e) => {
                        self.stats
                            .count(&self.stats.decode_errors, "net.decode_errors");
                        if let Some(conn) = &mut self.conns[slot] {
                            conn.read_closed = true;
                        }
                        let msg = encode_error(0, &WireError::Invalid(format!("bad job ref: {e}")));
                        self.enqueue_frame(slot, FrameType::Error, frame.trace, &msg, 0);
                        return;
                    }
                };
                self.stats.count(&self.stats.frames_read, "net.frames.read");
                let result = if cancel {
                    self.jobs.cancel(job)
                } else {
                    self.jobs.status(job)
                };
                match result {
                    Ok(snapshot) => {
                        let payload = encode_job_reply(&JobReply { id, snapshot });
                        self.enqueue_frame(slot, FrameType::JobResult, frame.trace, &payload, id);
                    }
                    Err(err) => self.refuse_job(slot, frame.trace, id, err),
                }
            }
            other => {
                self.stats
                    .count(&self.stats.decode_errors, "net.decode_errors");
                if let Some(conn) = &mut self.conns[slot] {
                    conn.read_closed = true;
                }
                let payload = encode_error(
                    0,
                    &WireError::Invalid(format!("unexpected {other:?} frame from client")),
                );
                self.enqueue_frame(slot, FrameType::Error, frame.trace, &payload, 0);
            }
        }
    }

    /// Answers a job operation with the typed refusal mapped onto the
    /// wire's error vocabulary: admission refusals are `Overloaded`
    /// (retryable), everything else is `Invalid` (permanent).
    fn refuse_job(&mut self, slot: usize, trace: u64, id: u64, err: JobError) {
        let wire_err = match err.shed_reason() {
            Some(reason) => {
                self.stats.count(&self.stats.overloaded, "net.overloaded");
                WireError::Overloaded { shard: 0, reason }
            }
            None => {
                self.stats.count(&self.stats.invalid, "net.invalid");
                WireError::Invalid(err.to_string())
            }
        };
        let payload = encode_error(id, &wire_err);
        self.enqueue_frame(slot, FrameType::Error, trace, &payload, id);
    }

    /// Frees a slot; its generation check drops any still-running
    /// completions for this connection.
    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    /// The only blocking primitive in the event loop is `poll(2)` itself.
    /// The old accept loop napped 5 ms per idle iteration; this source
    /// scan keeps sleep-based polling from creeping back into the hot
    /// path. (Split match string so the scan does not match itself.)
    #[test]
    fn no_sleep_based_polling_in_the_event_loop() {
        let src = include_str!("server.rs");
        let call = format!("::{}(", "sleep");
        assert!(
            !src.contains(&call),
            "sleep-based polling crept back into the event-loop server"
        );
    }
}
