//! Blocking TCP client with reconnect and deterministic backoff.
//!
//! [`NetClient::call`] is the whole API: encode the request, write the
//! frame, read one frame back, decode. Failures are classified:
//!
//! * transport / framing trouble (io errors, torn frames, protocol
//!   violations) → drop the socket, **reconnect**, resend. Safe because
//!   responses are pure functions of requests — a retried request yields
//!   the same (bitwise) answer.
//! * typed [`WireError::Overloaded`] → keep the connection, **back off**
//!   (deterministic exponential: `base · 2^n`, capped), resend.
//! * typed [`WireError::Invalid`] → permanent; returned immediately,
//!   never retried.
//!
//! After [`ClientConfig::max_attempts`] failures the last error is
//! returned wrapped in [`NetError::RetriesExhausted`] so callers see both
//! the budget and the terminal cause.
//!
//! Every socket carries [`ClientConfig::io_timeout`] read/write timeouts
//! from the moment it connects, so a stalled server (accepts, then goes
//! silent) surfaces as a timed-out [`NetError::Io`] on the regular
//! reconnect path instead of blocking the caller forever.
//! [`NetClient::call_with_deadline`] adds end-to-end deadline enforcement:
//! the *remaining* budget travels in the request (shrinking across
//! attempts), bounds each read, and expires as a typed
//! [`NetError::DeadlineExceeded`].

use crate::frame::{read_frame, write_frame, DecodeError, FrameReadError, FrameType};
use crate::wire::{
    decode_error, decode_job_reply, decode_response, decode_stats_reply, encode_job_cancel,
    encode_job_poll, encode_request, encode_request_with_deadline, encode_stats_request,
    encode_submit_job, StatsReply, WireError,
};
use fepia_obs::trace::{self, stage};
use fepia_obs::TraceId;
use fepia_serve::{EvalRequest, EvalResponse, JobSnapshot, JobSpec, ShedReason};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Retry budget and backoff shape.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Total attempts per [`NetClient::call`] (first try included).
    pub max_attempts: u32,
    /// Backoff before retry `n` (0-based) is `base · 2^n`, capped at
    /// [`ClientConfig::backoff_cap`]. Deterministic — no jitter — so
    /// fixed-seed tests reproduce identical schedules.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Socket read/write timeout applied to every connection, whether or
    /// not the call carries a deadline — the floor that keeps a stalled
    /// server from hanging a client forever. A timed-out operation surfaces
    /// as [`NetError::Io`] and takes the normal reconnect path.
    /// `Duration::ZERO` disables (blocking reads, the pre-deadline
    /// behavior).
    pub io_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            max_attempts: 8,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// Any way a call can fail.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure (connect, read, or write).
    Io(std::io::Error),
    /// The server sent bytes that do not decode as a frame/payload.
    Decode(DecodeError),
    /// Typed server refusal: the target shard shed the request.
    Overloaded {
        /// Shard that refused.
        shard: u64,
        /// Why it refused.
        reason: ShedReason,
    },
    /// Typed server refusal: the request can never be served as sent.
    Invalid(String),
    /// The server violated the protocol (wrong frame type or id echo).
    Protocol(String),
    /// The retry budget ran out; `last` is the final attempt's error.
    RetriesExhausted {
        /// Attempts consumed (== configured `max_attempts`).
        attempts: u32,
        /// The terminal cause.
        last: Box<NetError>,
    },
    /// The end-to-end deadline passed client-side before an answer
    /// arrived ([`NetClient::call_with_deadline`]).
    DeadlineExceeded {
        /// The deadline the call was given.
        deadline: Duration,
        /// Attempts started before the budget ran out.
        attempts: u32,
        /// The most recent attempt's error, if any attempt completed.
        last: Option<Box<NetError>>,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Decode(e) => write!(f, "decode: {e}"),
            NetError::Overloaded { shard, reason } => write!(
                f,
                "overloaded: shard {shard} ({})",
                match reason {
                    ShedReason::QueueFull => "queue full",
                    ShedReason::ShuttingDown => "shutting down",
                }
            ),
            NetError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            NetError::DeadlineExceeded {
                deadline,
                attempts,
                last,
            } => {
                write!(
                    f,
                    "deadline of {deadline:?} exceeded after {attempts} attempts"
                )?;
                if let Some(last) = last {
                    write!(f, "; last error: {last}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Applies the configured socket timeouts (ZERO = fully blocking).
fn apply_io_timeouts(stream: &TcpStream, timeout: Duration) -> std::io::Result<()> {
    let t = (!timeout.is_zero()).then_some(timeout);
    stream.set_read_timeout(t)?;
    stream.set_write_timeout(t)
}

/// A blocking client for one server address. Not thread-safe (`&mut self`
/// calls); use one client per thread, as the soak tests do.
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    reconnects: u64,
    retries: u64,
}

impl NetClient {
    /// Connects eagerly so configuration errors surface immediately.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        apply_io_timeouts(&stream, config.io_timeout).map_err(NetError::Io)?;
        Ok(NetClient {
            addr,
            config,
            stream: Some(stream),
            reconnects: 0,
            retries: 0,
        })
    }

    /// Times this client reconnected (transport-level recoveries).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Retries performed across all calls (any cause).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn stream(&mut self) -> Result<&mut TcpStream, NetError> {
        if self.stream.is_none() {
            let s = TcpStream::connect(self.addr).map_err(NetError::Io)?;
            s.set_nodelay(true).map_err(NetError::Io)?;
            apply_io_timeouts(&s, self.config.io_timeout).map_err(NetError::Io)?;
            self.stream = Some(s);
            self.reconnects += 1;
            if fepia_obs::enabled() {
                fepia_obs::global().counter("net.client.reconnects").inc();
            }
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// One attempt: write the request frame, read one frame, classify it.
    /// `read_budget` tightens this attempt's read timeout below the
    /// configured `io_timeout` (deadline calls pass their remaining
    /// budget); `None` restores the configured floor.
    fn attempt(
        &mut self,
        bytes: &[u8],
        id: u64,
        trace: u64,
        read_budget: Option<Duration>,
    ) -> Result<EvalResponse, NetError> {
        let traced = trace != 0 && trace::trace_enabled();
        let io_timeout = self.config.io_timeout;
        let stream = self.stream()?;
        let read_timeout = match read_budget {
            Some(budget) if !io_timeout.is_zero() => Some(budget.min(io_timeout)),
            Some(budget) => Some(budget),
            None if io_timeout.is_zero() => None,
            None => Some(io_timeout),
        };
        // `set_read_timeout(Some(ZERO))` is an invalid argument; callers
        // guard a non-zero remaining budget before attempting.
        stream
            .set_read_timeout(read_timeout.filter(|t| !t.is_zero()))
            .map_err(NetError::Io)?;
        let send_started = Instant::now();
        write_frame(stream, FrameType::Request, trace, bytes).map_err(NetError::Io)?;
        if traced {
            trace::with_wall(
                trace::span_event(TraceId(trace), stage::CLIENT_SEND, id),
                send_started,
            )
            .emit();
        }
        let frame = match read_frame(stream) {
            Ok(f) => f,
            Err(FrameReadError::Io(e)) => return Err(NetError::Io(e)),
            Err(FrameReadError::Closed) => {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "server closed the connection",
                )))
            }
            Err(FrameReadError::Decode(e)) => return Err(NetError::Decode(e)),
        };
        match frame.frame_type {
            FrameType::Response => {
                let resp = decode_response(&frame.payload).map_err(NetError::Decode)?;
                if resp.id != id {
                    return Err(NetError::Protocol(format!(
                        "response id {} for request id {id}",
                        resp.id
                    )));
                }
                Ok(resp)
            }
            FrameType::Error => {
                let (echo, err) = decode_error(&frame.payload).map_err(NetError::Decode)?;
                if echo != id && echo != 0 {
                    return Err(NetError::Protocol(format!(
                        "error frame id {echo} for request id {id}"
                    )));
                }
                Err(match err {
                    WireError::Overloaded { shard, reason } => {
                        NetError::Overloaded { shard, reason }
                    }
                    WireError::Invalid(msg) => NetError::Invalid(msg),
                })
            }
            other => Err(NetError::Protocol(format!(
                "server sent a {other:?} frame to an eval request"
            ))),
        }
    }

    /// Evaluates one request, retrying per the config. See the module docs
    /// for the retry / reconnect / give-up classification.
    ///
    /// Tracing: when [`fepia_obs::trace_enabled`], the client mints the
    /// request's [`TraceId`] here (deterministically, from the request id),
    /// sends it in the frame header, and emits `client.send` /
    /// `client.retry` / `client.recv` spans.
    pub fn call(&mut self, req: &EvalRequest) -> Result<EvalResponse, NetError> {
        let bytes = encode_request(req);
        let traced = trace::trace_enabled();
        let trace_id = if traced { TraceId::mint(req.id).0 } else { 0 };
        let call_started = Instant::now();
        let mut last: Option<NetError> = None;
        for n in 0..self.config.max_attempts {
            if n > 0 {
                self.retries += 1;
                if fepia_obs::enabled() {
                    fepia_obs::global().counter("net.client.retries").inc();
                }
                if traced {
                    trace::with_wall(
                        trace::span_event(TraceId(trace_id), stage::CLIENT_RETRY, req.id),
                        call_started,
                    )
                    .field("attempt", u64::from(n))
                    .field(
                        "cause",
                        match last.as_ref().expect("retry implies a prior error") {
                            NetError::Io(_) => "io",
                            NetError::Decode(_) => "decode",
                            NetError::Overloaded { .. } => "overloaded",
                            NetError::Protocol(_) => "protocol",
                            NetError::Invalid(_)
                            | NetError::RetriesExhausted { .. }
                            | NetError::DeadlineExceeded { .. } => "terminal",
                        },
                    )
                    .emit();
                }
                let exp = self
                    .config
                    .backoff_base
                    .saturating_mul(1u32 << (n - 1).min(16));
                std::thread::sleep(exp.min(self.config.backoff_cap));
            }
            match self.attempt(&bytes, req.id, trace_id, None) {
                Ok(resp) => {
                    if traced {
                        trace::with_wall(
                            trace::span_event(TraceId(trace_id), stage::CLIENT_RECV, req.id),
                            call_started,
                        )
                        .emit();
                    }
                    return Ok(resp);
                }
                Err(NetError::Invalid(msg)) => return Err(NetError::Invalid(msg)),
                Err(e @ NetError::Overloaded { .. }) => {
                    // The connection is fine; the service shed the request.
                    last = Some(e);
                }
                Err(e) => {
                    // Transport or framing trouble: the stream state is
                    // unknown, so reconnect before the next attempt.
                    self.stream = None;
                    last = Some(e);
                }
            }
        }
        Err(NetError::RetriesExhausted {
            attempts: self.config.max_attempts,
            last: Box::new(last.expect("max_attempts >= 1 guarantees an error")),
        })
    }

    /// Evaluates one request under an **end-to-end deadline**. The
    /// remaining budget — deadline minus time already burned — is:
    ///
    /// * sent to the server in the request (wire v3 `deadline_us`), so the
    ///   service can drop the request at dequeue or brown out the
    ///   evaluation instead of computing an answer nobody is waiting for;
    /// * applied as this attempt's socket read timeout (never looser than
    ///   [`ClientConfig::io_timeout`]);
    /// * shrunk across retries: each attempt re-encodes the request with
    ///   whatever budget is left, so a retry after a 40 ms stall asks for
    ///   strictly less server time than the original.
    ///
    /// Retries follow the same classification as [`NetClient::call`], with
    /// two additions: a retry is only hedged when the kind is idempotent
    /// ([`fepia_serve::EvalKind::is_idempotent`] — every current kind is a
    /// pure function of the request), and when the budget runs out the
    /// typed [`NetError::DeadlineExceeded`] carries the attempt count and
    /// last transport error. A response whose disposition is
    /// `DeadlineExceeded` (the server dropped it at dequeue) is returned
    /// as-is — typed data, not an error.
    pub fn call_with_deadline(
        &mut self,
        req: &EvalRequest,
        deadline: Duration,
    ) -> Result<EvalResponse, NetError> {
        let traced = trace::trace_enabled();
        let trace_id = if traced { TraceId::mint(req.id).0 } else { 0 };
        let call_started = Instant::now();
        let mut last: Option<NetError> = None;
        let mut attempts = 0u32;
        for n in 0..self.config.max_attempts {
            let Some(remaining) = deadline
                .checked_sub(call_started.elapsed())
                .filter(|r| !r.is_zero())
            else {
                break;
            };
            if n > 0 {
                if !req.kind.is_idempotent() {
                    // A non-idempotent kind must not be hedged: the first
                    // attempt may have been applied server-side.
                    return Err(last.take().expect("retry implies a prior error"));
                }
                self.retries += 1;
                if fepia_obs::enabled() {
                    fepia_obs::global().counter("net.client.retries").inc();
                }
                if traced {
                    trace::with_wall(
                        trace::span_event(TraceId(trace_id), stage::CLIENT_RETRY, req.id),
                        call_started,
                    )
                    .field("attempt", u64::from(n))
                    .field("cause", "deadline-retry")
                    .emit();
                }
                let exp = self
                    .config
                    .backoff_base
                    .saturating_mul(1u32 << (n - 1).min(16));
                std::thread::sleep(exp.min(self.config.backoff_cap).min(remaining));
            }
            // Re-check after the backoff sleep also consumed budget.
            let Some(remaining) = deadline
                .checked_sub(call_started.elapsed())
                .filter(|r| !r.is_zero())
            else {
                break;
            };
            attempts += 1;
            let deadline_us = remaining.as_micros().min(u64::MAX as u128) as u64;
            let bytes = encode_request_with_deadline(req, deadline_us.max(1));
            match self.attempt(&bytes, req.id, trace_id, Some(remaining)) {
                Ok(resp) => {
                    if traced {
                        trace::with_wall(
                            trace::span_event(TraceId(trace_id), stage::CLIENT_RECV, req.id),
                            call_started,
                        )
                        .emit();
                    }
                    return Ok(resp);
                }
                Err(NetError::Invalid(msg)) => return Err(NetError::Invalid(msg)),
                Err(e @ NetError::Overloaded { .. }) => {
                    last = Some(e);
                }
                Err(e) => {
                    self.stream = None;
                    last = Some(e);
                }
            }
        }
        if fepia_obs::enabled() {
            fepia_obs::global().counter("deadline.client_expired").inc();
        }
        Err(NetError::DeadlineExceeded {
            deadline,
            attempts,
            last: last.map(Box::new),
        })
    }

    /// Evaluates a batch of requests **pipelined on one connection**: all
    /// frames are encoded into a single buffer and written in one burst,
    /// then responses are collected as the server produces them — in any
    /// order, matched back to their request by the id echo. Returns the
    /// responses in request order.
    ///
    /// Requirements on the batch: ids must be unique (they are the
    /// correlation keys). One attempt, no retry: on any failure the
    /// connection is dropped and the typed error returned — the caller
    /// decides whether re-running the whole batch is worth it (safe,
    /// since responses are pure functions of requests). A typed per-
    /// request refusal (`Overloaded` / `Invalid` error frame) fails the
    /// batch with that error.
    pub fn call_pipelined(&mut self, reqs: &[EvalRequest]) -> Result<Vec<EvalResponse>, NetError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let traced = trace::trace_enabled();
        let send_started = Instant::now();
        let mut batch = Vec::new();
        let mut index_of = std::collections::HashMap::with_capacity(reqs.len());
        for (i, req) in reqs.iter().enumerate() {
            if index_of.insert(req.id, i).is_some() {
                return Err(NetError::Protocol(format!(
                    "pipelined batch reuses id {} (ids are correlation keys)",
                    req.id
                )));
            }
            let trace_id = if traced { TraceId::mint(req.id).0 } else { 0 };
            let frame =
                crate::frame::Frame::with_trace(FrameType::Request, trace_id, encode_request(req));
            batch.extend_from_slice(&frame.encode());
        }
        let stream = self.stream()?;
        if let Err(e) = stream.write_all(&batch).and_then(|()| stream.flush()) {
            self.stream = None;
            return Err(NetError::Io(e));
        }
        if traced {
            for req in reqs {
                trace::with_wall(
                    trace::span_event(TraceId(TraceId::mint(req.id).0), stage::CLIENT_SEND, req.id),
                    send_started,
                )
                .emit();
            }
        }
        let mut slots: Vec<Option<EvalResponse>> = (0..reqs.len()).map(|_| None).collect();
        let mut filled = 0usize;
        while filled < reqs.len() {
            let outcome = (|| -> Result<EvalResponse, NetError> {
                let stream = self.stream.as_mut().expect("stream present while reading");
                let frame = match read_frame(stream) {
                    Ok(f) => f,
                    Err(FrameReadError::Io(e)) => return Err(NetError::Io(e)),
                    Err(FrameReadError::Closed) => {
                        return Err(NetError::Io(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "server closed the connection mid-batch",
                        )))
                    }
                    Err(FrameReadError::Decode(e)) => return Err(NetError::Decode(e)),
                };
                match frame.frame_type {
                    FrameType::Response => {
                        decode_response(&frame.payload).map_err(NetError::Decode)
                    }
                    FrameType::Error => {
                        let (echo, err) = decode_error(&frame.payload).map_err(NetError::Decode)?;
                        Err(match err {
                            WireError::Overloaded { shard, reason } => {
                                let _ = echo;
                                NetError::Overloaded { shard, reason }
                            }
                            WireError::Invalid(msg) => NetError::Invalid(msg),
                        })
                    }
                    other => Err(NetError::Protocol(format!(
                        "server sent a {other:?} frame to a pipelined eval batch"
                    ))),
                }
            })();
            let resp = match outcome {
                Ok(resp) => resp,
                Err(e) => {
                    self.stream = None;
                    return Err(e);
                }
            };
            let Some(&i) = index_of.get(&resp.id) else {
                self.stream = None;
                return Err(NetError::Protocol(format!(
                    "response id {} matches no request in the batch",
                    resp.id
                )));
            };
            if slots[i].is_some() {
                self.stream = None;
                return Err(NetError::Protocol(format!(
                    "duplicate response for id {}",
                    resp.id
                )));
            }
            if traced {
                trace::with_wall(
                    trace::span_event(
                        TraceId(TraceId::mint(resp.id).0),
                        stage::CLIENT_RECV,
                        resp.id,
                    ),
                    send_started,
                )
                .emit();
            }
            slots[i] = Some(resp);
            filled += 1;
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }

    /// One job-frame round trip: write the frame, read one frame back,
    /// classify. Every job operation is answered with a `JobResult` frame
    /// (or a typed error frame), whatever the operation was.
    fn job_roundtrip(
        &mut self,
        frame_type: FrameType,
        bytes: &[u8],
        id: u64,
        trace: u64,
    ) -> Result<JobSnapshot, NetError> {
        let stream = self.stream()?;
        write_frame(stream, frame_type, trace, bytes).map_err(NetError::Io)?;
        let frame = match read_frame(stream) {
            Ok(f) => f,
            Err(FrameReadError::Io(e)) => return Err(NetError::Io(e)),
            Err(FrameReadError::Closed) => {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "server closed the connection",
                )))
            }
            Err(FrameReadError::Decode(e)) => return Err(NetError::Decode(e)),
        };
        match frame.frame_type {
            FrameType::JobResult => {
                let reply = decode_job_reply(&frame.payload).map_err(NetError::Decode)?;
                if reply.id != id {
                    return Err(NetError::Protocol(format!(
                        "job reply id {} for request id {id}",
                        reply.id
                    )));
                }
                Ok(reply.snapshot)
            }
            FrameType::Error => {
                let (echo, err) = decode_error(&frame.payload).map_err(NetError::Decode)?;
                if echo != id && echo != 0 {
                    return Err(NetError::Protocol(format!(
                        "error frame id {echo} for request id {id}"
                    )));
                }
                Err(match err {
                    WireError::Overloaded { shard, reason } => {
                        NetError::Overloaded { shard, reason }
                    }
                    WireError::Invalid(msg) => NetError::Invalid(msg),
                })
            }
            other => Err(NetError::Protocol(format!(
                "server sent a {other:?} frame to a job operation"
            ))),
        }
    }

    /// An idempotent job operation (status poll, cancel) with the same
    /// retry / reconnect / backoff classification as [`NetClient::call`].
    fn job_call_retried(
        &mut self,
        frame_type: FrameType,
        bytes: &[u8],
        id: u64,
        trace: u64,
    ) -> Result<JobSnapshot, NetError> {
        let mut last: Option<NetError> = None;
        for n in 0..self.config.max_attempts {
            if n > 0 {
                self.retries += 1;
                if fepia_obs::enabled() {
                    fepia_obs::global().counter("net.client.retries").inc();
                }
                let exp = self
                    .config
                    .backoff_base
                    .saturating_mul(1u32 << (n - 1).min(16));
                std::thread::sleep(exp.min(self.config.backoff_cap));
            }
            match self.job_roundtrip(frame_type, bytes, id, trace) {
                Ok(snapshot) => return Ok(snapshot),
                Err(NetError::Invalid(msg)) => return Err(NetError::Invalid(msg)),
                Err(e @ NetError::Overloaded { .. }) => last = Some(e),
                Err(e) => {
                    self.stream = None;
                    last = Some(e);
                }
            }
        }
        Err(NetError::RetriesExhausted {
            attempts: self.config.max_attempts,
            last: Box::new(last.expect("max_attempts >= 1 guarantees an error")),
        })
    }

    /// Submits an optimizer job and returns its first snapshot (carrying
    /// the server-assigned job id in [`JobSnapshot::job`]).
    ///
    /// **One attempt, no retry**: a submit is not idempotent — a retry
    /// after a transport failure could admit the job twice. On a transport
    /// error the caller does not know whether the job was admitted; since
    /// fronts are pure functions of the spec, resubmitting costs capacity
    /// but never correctness. Typed `Overloaded` (the job table is at its
    /// admission bound) and `Invalid` (the spec can never run) come back
    /// unretried as well — the caller owns the admission policy.
    pub fn submit_job(&mut self, id: u64, spec: &JobSpec) -> Result<JobSnapshot, NetError> {
        let bytes = encode_submit_job(id, spec);
        let trace = if trace::trace_enabled() {
            TraceId::mint(id).0
        } else {
            0
        };
        let result = self.job_roundtrip(FrameType::SubmitJob, &bytes, id, trace);
        if matches!(
            result,
            Err(NetError::Io(_) | NetError::Decode(_) | NetError::Protocol(_))
        ) {
            self.stream = None;
        }
        result
    }

    /// Polls a job's best-so-far snapshot. Idempotent: retried with
    /// reconnect and backoff like [`NetClient::call`].
    pub fn job_status(&mut self, id: u64, job: u64) -> Result<JobSnapshot, NetError> {
        let bytes = encode_job_poll(id, job);
        let trace = if trace::trace_enabled() {
            TraceId::mint(id).0
        } else {
            0
        };
        self.job_call_retried(FrameType::JobStatus, &bytes, id, trace)
    }

    /// Requests cancellation and returns the resulting snapshot (already
    /// typed `Cancelled` unless the job had finished first). Idempotent:
    /// retried with reconnect and backoff.
    pub fn cancel_job(&mut self, id: u64, job: u64) -> Result<JobSnapshot, NetError> {
        let bytes = encode_job_cancel(id, job);
        let trace = if trace::trace_enabled() {
            TraceId::mint(id).0
        } else {
            0
        };
        self.job_call_retried(FrameType::CancelJob, &bytes, id, trace)
    }

    /// Polls every `interval` until the job reaches a terminal state,
    /// returning the final snapshot. Poll `n` uses request id
    /// `base_id + n` so every frame keeps a unique correlation id.
    pub fn wait_job(
        &mut self,
        base_id: u64,
        job: u64,
        interval: Duration,
    ) -> Result<JobSnapshot, NetError> {
        let mut n = 0u64;
        loop {
            let snapshot = self.job_status(base_id.wrapping_add(n), job)?;
            if snapshot.state.is_terminal() {
                return Ok(snapshot);
            }
            n += 1;
            std::thread::sleep(interval);
        }
    }

    /// Polls the server's live counters ([`StatsReply`]): per-shard service
    /// stats plus the net layer's frame counters. One attempt, no retry —
    /// a stats poll is cheap to reissue and the caller usually wants
    /// *current* numbers, not a delayed echo.
    pub fn stats(&mut self, id: u64) -> Result<StatsReply, NetError> {
        let bytes = encode_stats_request(id);
        // Under pipelining every outbound frame needs a unique correlation
        // id: stats polls mint theirs from the same SplitMix64 sequence as
        // eval requests (0 only when tracing is off).
        let trace = if trace::trace_enabled() {
            TraceId::mint(id).0
        } else {
            0
        };
        let stream = self.stream()?;
        if let Err(e) = write_frame(stream, FrameType::StatsRequest, trace, &bytes) {
            self.stream = None;
            return Err(NetError::Io(e));
        }
        let frame = match read_frame(stream) {
            Ok(f) => f,
            Err(err) => {
                self.stream = None;
                return Err(match err {
                    FrameReadError::Io(e) => NetError::Io(e),
                    FrameReadError::Closed => NetError::Io(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        "server closed the connection",
                    )),
                    FrameReadError::Decode(e) => NetError::Decode(e),
                });
            }
        };
        match frame.frame_type {
            FrameType::StatsResponse => {
                let reply = decode_stats_reply(&frame.payload).map_err(NetError::Decode)?;
                if reply.id != id {
                    return Err(NetError::Protocol(format!(
                        "stats reply id {} for poll id {id}",
                        reply.id
                    )));
                }
                Ok(reply)
            }
            FrameType::Error => {
                let (_, err) = decode_error(&frame.payload).map_err(NetError::Decode)?;
                Err(match err {
                    WireError::Overloaded { shard, reason } => {
                        NetError::Overloaded { shard, reason }
                    }
                    WireError::Invalid(msg) => NetError::Invalid(msg),
                })
            }
            other => Err(NetError::Protocol(format!(
                "server sent a {other:?} frame to a stats poll"
            ))),
        }
    }
}
