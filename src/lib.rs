//! `fepia` — facade crate for the FePIA robustness-metric workspace.
//!
//! This workspace reproduces *"Definition of a Robustness Metric for Resource
//! Allocation"* (Shoukat Ali, Anthony A. Maciejewski, Howard Jay Siegel,
//! Jong-Kook Kim; IPDPS/IPPS 2003). The paper defines, for a resource
//! allocation (*mapping*) `μ`:
//!
//! * the **robustness radius** `r_μ(φᵢ, πⱼ)` — the smallest Euclidean
//!   perturbation of the parameter vector `πⱼ` away from its assumed value
//!   that drives the performance feature `φᵢ` out of its tolerable range
//!   (Eq. 1), and
//! * the **robustness metric** `ρ_μ(Φ, πⱼ) = min_{φᵢ∈Φ} r_μ(φᵢ, πⱼ)`
//!   (Eq. 2),
//!
//! together with the four-step **FePIA** derivation procedure and two worked
//! systems: independent application allocation (§3.1) and the HiPer-D
//! streaming DAG system (§3.2).
//!
//! The facade re-exports the member crates under stable names:
//!
//! * [`core`](mod@core) — the FePIA framework (features, perturbations,
//!   impacts, radii, metric).
//! * [`optim`](mod@optim) — the numeric substrate (vectors, hyperplanes,
//!   root finding, the min-norm boundary solver).
//! * [`stats`](mod@stats) — Gamma sampling, the CVB heterogeneity method,
//!   summaries, correlation, regression.
//! * [`par`](mod@par) — deterministic parallel sweeps on crossbeam scoped
//!   threads.
//! * [`chaos`](mod@chaos) — deterministic, seedable fault injection
//!   (`FEPIA_CHAOS`); off by default with near-zero cost.
//! * [`etc`](mod@etc) — ETC-matrix generation (mean/heterogeneity
//!   controlled, consistency shaping).
//! * [`mapping`](mod@mapping) — the §3.1 independent-task system with the
//!   analytic Eq. 6 radius and baseline mapping heuristics.
//! * [`hiperd`](mod@hiperd) — the §3.2 HiPer-D system model with
//!   throughput/latency constraints, slack, and load robustness.
//! * [`serve`](mod@serve) — the long-running evaluation service: sharded
//!   workers, per-shard LRU plan caches with single-flight compilation,
//!   bounded queues with typed shedding, graceful drain.
//! * [`net`](mod@net) — the TCP boundary for that service: a
//!   length-prefixed checksummed wire protocol, a multi-connection
//!   server with bounded in-flight windows, and a reconnecting blocking
//!   client; responses over TCP are bitwise identical to in-process
//!   answers.
//! * [`plot`](mod@plot) — self-contained SVG output for the paper's
//!   figures.
//!
//! # Quickstart
//!
//! Compute the robustness of a mapping of 6 independent applications on 2
//! machines against ETC errors, with a 20% makespan tolerance (the paper's
//! §4.2 setting in miniature):
//!
//! ```
//! use fepia::mapping::{makespan_robustness, EtcMatrix, Mapping};
//!
//! // Estimated times-to-compute: rows are applications, columns machines.
//! let etc = EtcMatrix::from_rows(vec![
//!     vec![10.0, 20.0],
//!     vec![15.0, 10.0],
//!     vec![12.0, 24.0],
//!     vec![30.0, 18.0],
//!     vec![ 9.0,  9.0],
//!     vec![22.0, 11.0],
//! ]);
//! let mapping = Mapping::new(vec![0, 1, 0, 1, 0, 1], 2);
//! let makespan = mapping.makespan(&etc);
//! let report = makespan_robustness(&mapping, &etc, 1.2).unwrap();
//! // Any ETC error vector with l2-norm below the metric keeps the actual
//! // makespan within 1.2x the predicted value (Eq. 7 of the paper).
//! assert!(report.metric > 0.0);
//! assert!(report.metric <= 1.2 * makespan);
//! ```

pub use fepia_chaos as chaos;
pub use fepia_core as core;
pub use fepia_etc as etc;
pub use fepia_hiperd as hiperd;
pub use fepia_mapping as mapping;
pub use fepia_net as net;
pub use fepia_optim as optim;
pub use fepia_par as par;
pub use fepia_plot as plot;
pub use fepia_serve as serve;
pub use fepia_stats as stats;
