//! Workspace chaos/fault-injection suite (PR 3 acceptance).
//!
//! Chaos configuration is process-global, so the chaos-seeded runs live in
//! this dedicated integration binary rather than in crate unit-test modules:
//! a local mutex serializes every test (enabled *and* disabled-path tests,
//! so a bitwise check never observes another test's injected faults), and a
//! panic hook silences the intentional `chaos: injected panic` messages that
//! the containment layers catch.
//!
//! Covered:
//!
//! * batch + parallel verdict evaluation of ≥1k origins at fault rates up
//!   to 20% — a classified verdict for every origin, zero escaped panics;
//! * `DeltaEval` under cached-state poisoning — self-heals and keeps
//!   answering over ≥1k moves;
//! * NaN/Inf/degenerate inputs through the verdict path (proptest) — typed
//!   verdicts, never a panic;
//! * chaos disabled — the verdict path stays **bitwise** identical to the
//!   exact PR 2 evaluation path.

use fepia::core::{
    FeatureSpec, FepiaAnalysis, FnImpact, LinearImpact, Perturbation, RadiusOptions,
    ResiliencePolicy, Tolerance, VerdictKind,
};
use fepia::etc::{generate_cvb, EtcParams};
use fepia::mapping::{DeltaEval, Mapping};
use fepia::optim::VecN;
use fepia::par::ParConfig;
use fepia::stats::rng_for;
use proptest::prelude::*;
use rand::Rng;
use std::sync::{Mutex, Once};

/// Serializes all tests in this binary: chaos state is process-wide.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Holds the lock (tolerating poisoning from a failed test) with the panic
/// hook installed and chaos initially disabled.
fn chaos_guard() -> std::sync::MutexGuard<'static, ()> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let text = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !text.contains("chaos: injected panic") {
                previous(info);
            }
        }));
    });
    let guard = CHAOS_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fepia::chaos::clear();
    guard
}

/// A small mixed affine + numeric analysis over `dim`-dimensional origins.
fn mixed_analysis(seed: u64, dim: usize) -> FepiaAnalysis {
    let mut rng = rng_for(seed, 40);
    let origin = VecN::from(
        (0..dim)
            .map(|_| rng.gen_range(0.5..2.0f64))
            .collect::<Vec<f64>>(),
    );
    let mut analysis = FepiaAnalysis::new(Perturbation::continuous("pi", origin));
    for k in 0..2 {
        let coeffs: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0f64)).collect();
        analysis.add_feature(
            FeatureSpec::new(
                format!("affine_{k}"),
                Tolerance::upper(rng.gen_range(2.0..9.0)),
            ),
            LinearImpact::new(VecN::from(coeffs), 0.0),
        );
    }
    let scale = rng.gen_range(0.5..1.5f64);
    analysis.add_feature(
        FeatureSpec::new("numeric", Tolerance::upper(rng.gen_range(8.0..25.0))),
        FnImpact::new(move |v: &VecN| scale * v.dot(v)).with_dim(dim),
    );
    analysis
}

fn random_origins(seed: u64, n: usize, dim: usize) -> Vec<VecN> {
    let mut rng = rng_for(seed, 41);
    (0..n)
        .map(|_| {
            VecN::from(
                (0..dim)
                    .map(|_| rng.gen_range(-2.0..2.0f64))
                    .collect::<Vec<f64>>(),
            )
        })
        .collect()
}

/// ≥1k-origin batch sweeps at fault rates up to 20%: sequential and
/// parallel evaluation both return a classified verdict for every origin.
#[test]
fn chaos_batch_sweeps_return_a_verdict_for_every_origin() {
    let _guard = chaos_guard();
    let dim = 3;
    let analysis = mixed_analysis(7, dim);
    let plan = analysis
        .compile(&RadiusOptions::default())
        .expect("compiles");
    let origins = random_origins(7, 1_024, dim);
    let policy = ResiliencePolicy::default();

    for &rate in &[0.05, 0.2] {
        fepia::chaos::set_for_test(2003, rate);
        let seq = plan.evaluate_batch_verdicts(&origins, &policy);
        fepia::chaos::set_for_test(2003, rate);
        let par = plan.evaluate_batch_par_verdicts(&origins, &ParConfig::with_threads(4), &policy);
        fepia::chaos::clear();

        assert_eq!(seq.len(), origins.len());
        assert_eq!(par.len(), origins.len());
        for batch in [&seq, &par] {
            for (i, v) in batch.iter().enumerate() {
                assert_eq!(v.radii.len(), 3, "origin {i}: verdict covers all features");
                // Classified means every verdict carries usable bounds.
                assert!(
                    v.metric_lo >= 0.0 && !v.metric_lo.is_nan() && !v.metric_hi.is_nan(),
                    "origin {i} (rate {rate}): unclassified verdict {:?}",
                    v.kind
                );
            }
        }
        // The injection actually fired: at a 5%+ per-site rate over 1k
        // 3-component origins, some poisoned evaluations are certain.
        let non_exact = seq.iter().filter(|v| !v.is_exact()).count();
        assert!(non_exact > 0, "rate {rate}: chaos never fired");
    }
}

/// ≥1k delta moves with cached-state poisoning: `DeltaEval` self-heals and
/// reports a usable verdict after every move, then matches a clean rebuild
/// bitwise once chaos is off.
#[test]
fn chaos_delta_eval_self_heals_across_1k_moves() {
    let _guard = chaos_guard();
    let apps = 40;
    let machines = 6;
    let tau = 1.2;
    let etc = generate_cvb(
        &mut rng_for(11, 0),
        &EtcParams {
            apps,
            machines,
            ..EtcParams::paper_section_4_2()
        },
    );
    let start = Mapping::random(&mut rng_for(11, 1), apps, machines);
    let mut delta = DeltaEval::new(&etc, &start, tau);
    let mut mapping = start;

    fepia::chaos::set_for_test(77, 0.2);
    let mut rng = rng_for(11, 2);
    for step in 0..1_024 {
        let app = rng.gen_range(0..apps);
        let dst = rng.gen_range(0..machines);
        delta.apply(app, dst);
        mapping.reassign(app, dst);
        let v = delta.verdict();
        assert!(
            v.radius_bounds().is_some() || !delta.metric().is_nan(),
            "step {step}: delta state left unclassified after chaos"
        );
        assert!(
            !delta.metric().is_nan(),
            "step {step}: metric NaN survived heal"
        );
    }
    fepia::chaos::clear();

    // With chaos off the healed evaluator agrees bitwise with a rebuild.
    let clean = DeltaEval::new(&etc, &mapping, tau);
    assert_eq!(delta.metric().to_bits(), clean.metric().to_bits());
    assert_eq!(delta.makespan().to_bits(), clean.makespan().to_bits());
}

/// Chaos-seeded end-to-end `run_verdict` on the facade analysis: the
/// verdict is always classified, and repeating the same seed is
/// deterministic.
#[test]
fn chaos_run_verdict_is_classified_and_seed_deterministic() {
    let _guard = chaos_guard();
    let analysis = mixed_analysis(23, 4);
    let opts = RadiusOptions::default();
    let policy = ResiliencePolicy::default();

    fepia::chaos::set_for_test(5, 0.2);
    let first = analysis.run_verdict(&opts, &policy);
    fepia::chaos::set_for_test(5, 0.2);
    let second = analysis.run_verdict(&opts, &policy);
    fepia::chaos::clear();

    assert_eq!(first.kind, second.kind);
    assert_eq!(first.metric_lo.to_bits(), second.metric_lo.to_bits());
    assert_eq!(first.metric_hi.to_bits(), second.metric_hi.to_bits());
    assert!(!first.metric_lo.is_nan() && !first.metric_hi.is_nan());
}

proptest! {
    /// NaN/Inf/huge/degenerate origins fed straight into the verdict path:
    /// always a typed verdict, never a panic, and non-finite inputs are
    /// named as `Failed`.
    #[test]
    fn bad_origins_yield_typed_verdicts(seed in 0u64..60, bad_kind in 0usize..3) {
        let _guard = chaos_guard();
        let dim = 3;
        let analysis = mixed_analysis(seed, dim);
        let plan = analysis.compile(&RadiusOptions::default()).expect("compiles");
        let policy = ResiliencePolicy::default();

        let mut rng = rng_for(seed, 42);
        let bad_value = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][bad_kind];
        let mut origin: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0f64)).collect();
        let idx = rng.gen_range(0..dim);
        origin[idx] = bad_value;

        let v = plan.evaluate_verdict(&VecN::from(origin), &policy);
        prop_assert_eq!(v.kind, VerdictKind::Failed);
        prop_assert_eq!(v.metric_lo, 0.0);

        // Degenerate (zero-width) tolerance stays a classified exact zero.
        let mut degenerate = FepiaAnalysis::new(
            Perturbation::continuous("pi", VecN::from([1.0, 1.0, 1.0])),
        );
        degenerate.add_feature(
            FeatureSpec::new("pinned", Tolerance::new(3.0, 3.0).unwrap()),
            FnImpact::new(|v: &VecN| v.iter().sum()).with_dim(3),
        );
        let dv = degenerate.run_verdict(&RadiusOptions::default(), &policy);
        prop_assert!(dv.is_exact());
        prop_assert_eq!(dv.metric_estimate(), 0.0);
    }

    /// With `FEPIA_CHAOS` unset the verdict path is **bitwise** identical
    /// to the exact PR 2 evaluation path on clean random systems.
    #[test]
    fn disabled_chaos_is_bitwise_identical_to_exact_path(seed in 0u64..40) {
        let _guard = chaos_guard();
        prop_assert!(!fepia::chaos::enabled());
        let dim = 3;
        let analysis = mixed_analysis(seed, dim);
        let plan = analysis.compile(&RadiusOptions::default()).expect("compiles");
        let policy = ResiliencePolicy::default();

        for origin in random_origins(seed, 8, dim) {
            let exact = plan.evaluate(&origin).expect("clean system evaluates");
            let verdict = plan.evaluate_verdict(&origin, &policy);
            // Clean inputs never degrade: the kind is Exact (or Infeasible
            // when a tolerance is violated at this origin, radius exactly 0).
            prop_assert!(verdict.is_exact());
            prop_assert_eq!(
                verdict.metric_hi.to_bits(),
                exact.metric.to_bits(),
                "seed {}: metric bits diverged", seed
            );
            for (k, rv) in verdict.radii.iter().enumerate() {
                let (lo, hi) = rv.radius_bounds().expect("clean verdicts certify");
                prop_assert_eq!(lo.to_bits(), hi.to_bits());
                prop_assert_eq!(
                    hi.to_bits(),
                    exact.radii[k].to_bits(),
                    "seed {}: radius {} bits diverged", seed, k
                );
            }
        }
    }
}
