//! The facade crate's public API surface: everything a downstream user
//! reaches through `fepia::…` works together, and property tests hold
//! across crate boundaries.

use fepia::core::{
    FeatureSpec, FepiaAnalysis, LinearImpact, Perturbation, RadiusOptions, Tolerance,
};
use fepia::optim::{Norm, VecN};
use proptest::prelude::*;

#[test]
fn all_reexports_are_reachable() {
    // One symbol per member crate, used for real.
    let v = fepia::optim::VecN::from([3.0, 4.0]);
    assert_eq!(v.norm_l2(), 5.0);

    let g = fepia::stats::Gamma::from_mean_heterogeneity(10.0, 0.7);
    assert!((g.mean() - 10.0).abs() < 1e-12);

    let out = fepia::par::par_map(&[1, 2, 3], &fepia::par::ParConfig::default(), |_, x| x * 2);
    assert_eq!(out, vec![2, 4, 6]);

    let etc = fepia::etc::EtcMatrix::uniform(4, 2, 5.0);
    let m = fepia::mapping::Mapping::new(vec![0, 0, 1, 1], 2);
    assert_eq!(m.makespan(&etc), 10.0);

    let chart = {
        let mut c = fepia::plot::Chart::new("t", "x", "y");
        c.add(fepia::plot::Series::points(
            "s",
            vec![(0.0, 0.0), (1.0, 1.0)],
        ));
        c
    };
    assert!(chart.render(200.0, 150.0).render().contains("<svg"));
}

proptest! {
    /// Cross-crate property: for a single-feature affine analysis, the
    /// metric equals the dual-norm hyperplane distance for every norm.
    #[test]
    fn affine_metric_matches_dual_norm_distance(
        coeffs in prop::collection::vec(0.1..10.0f64, 2..6),
        origin in prop::collection::vec(0.0..10.0f64, 6),
        margin in 1.0..100.0f64,
    ) {
        let n = coeffs.len();
        let origin = VecN::new(origin[..n].to_vec());
        let a = VecN::new(coeffs);
        let f0 = a.dot(&origin);
        let bound = f0 + margin;

        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            let mut analysis = FepiaAnalysis::new(Perturbation::continuous("p", origin.clone()));
            analysis.add_feature(
                FeatureSpec::new("f", Tolerance::upper(bound)),
                LinearImpact::homogeneous(a.clone()),
            );
            let report = analysis
                .run(&RadiusOptions { norm: norm.clone(), solver: Default::default() })
                .unwrap();
            let dual = match norm {
                Norm::L1 => a.norm_linf(),
                Norm::L2 => a.norm_l2(),
                Norm::LInf => a.norm_l1(),
                Norm::WeightedL2(_) => unreachable!(),
            };
            let expect = margin / dual;
            prop_assert!(
                (report.metric - expect).abs() < 1e-9 * (1.0 + expect),
                "{}: metric {} vs dual-norm distance {expect}", norm.name(), report.metric
            );
        }
    }

    /// Scaling all ETCs by s > 0 scales makespan and robustness by s
    /// (the metric has the units of C — the paper notes it is in seconds).
    #[test]
    fn metric_units_scale_with_etc(seed in 0u64..50, s in 0.1..10.0f64) {
        use fepia::etc::{generate_cvb, EtcParams};
        use fepia::mapping::{makespan_robustness, Mapping};
        use fepia::stats::rng_for;

        let etc = generate_cvb(&mut rng_for(seed, 0), &EtcParams::paper_section_4_2());
        let mapping = Mapping::random(&mut rng_for(seed, 1), 20, 5);
        let base = makespan_robustness(&mapping, &etc, 1.2).unwrap();

        let scaled_rows: Vec<Vec<f64>> = (0..etc.apps())
            .map(|i| etc.row(i).iter().map(|v| v * s).collect())
            .collect();
        let etc_s = fepia::etc::EtcMatrix::from_rows(scaled_rows);
        let scaled = makespan_robustness(&mapping, &etc_s, 1.2).unwrap();

        prop_assert!((scaled.makespan - s * base.makespan).abs() < 1e-6 * (1.0 + scaled.makespan));
        prop_assert!((scaled.metric - s * base.metric).abs() < 1e-6 * (1.0 + scaled.metric));
    }
}
