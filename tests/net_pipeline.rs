//! Request pipelining over one connection (PR 7 acceptance).
//!
//! Three contracts:
//!
//! 1. **Depth.** A 64-request batch written in one burst actually keeps
//!    ≥ 8 requests in flight inside the server (the event loop decodes
//!    and submits frames faster than a single worker drains them); the
//!    high-water mark is exported as `max_pipeline_depth` in the stats
//!    snapshot.
//! 2. **Correctness under pipelining.** Every batched response is
//!    bitwise identical to what an identically configured in-process
//!    service returns for the same sequential stream — pipelining is a
//!    transport optimization, never a semantic change.
//! 3. **Out-of-order matching.** Responses are correlated by the id
//!    echo, not arrival order: a scripted server answering a batch in
//!    *reverse* order still yields responses in request order, and a
//!    batch that reuses an id is rejected before anything is sent.

use fepia::net::frame::{read_frame, write_frame, FrameType};
use fepia::net::wire::{decode_request, encode_response};
use fepia::net::{ClientConfig, NetClient, NetError, NetServer, ServerConfig};
use fepia::serve::workload::{request, scenario_pool, WorkloadSpec};
use fepia::serve::{Service, ServiceConfig};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

static NET_LOCK: Mutex<()> = Mutex::new(());

fn net_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = NET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fepia::chaos::clear();
    guard
}

const BATCH: u64 = 64;

/// One shard, one worker, a queue deep enough for the whole batch: the
/// event loop ingests the 64-frame burst while the lone worker grinds,
/// so the in-flight window demonstrably fills, and the single FIFO
/// queue keeps the cache-event sequence identical to a sequential
/// in-process reference — full bitwise equality, not just verdicts.
fn pipeline_config() -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_capacity: 128,
        cache_capacity: 8,
        ..ServiceConfig::default()
    }
}

#[test]
fn batch_of_64_reaches_pipeline_depth_8_and_stays_bitwise_equal() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 7_001,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let reqs: Vec<_> = (0..BATCH).map(|i| request(&spec, &pool, i)).collect();

    let reference = Service::start(pipeline_config());
    let served = Arc::new(Service::start(pipeline_config()));
    let server =
        NetServer::start(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    let responses = client.call_pipelined(&reqs).expect("pipelined batch");
    assert_eq!(responses.len() as u64, BATCH);
    for (index, (req, resp)) in reqs.iter().zip(&responses).enumerate() {
        assert_eq!(resp.id, req.id, "slot {index} holds the wrong response");
        let expected = reference.call_blocking(req.clone()).expect("reference");
        assert_eq!(
            encode_response(resp),
            encode_response(&expected),
            "request {index}: pipelined response differs from in-process (bitwise)"
        );
    }

    let stats = server.shutdown();
    assert!(
        stats.max_pipeline_depth >= 8,
        "pipelining must keep >= 8 requests in flight on one connection \
         (observed high-water {})",
        stats.max_pipeline_depth
    );
    assert_eq!(stats.frames_read, BATCH);
    assert_eq!(stats.frames_written, BATCH);
    assert_eq!(stats.decode_errors + stats.overloaded + stats.invalid, 0);
    reference.shutdown();
    Arc::try_unwrap(served)
        .ok()
        .expect("server released its service handle")
        .shutdown();
}

/// A scripted server reads the whole batch, then answers in **reverse**
/// order. The client must still return responses in request order,
/// each matched to its request by the id echo.
#[test]
fn reverse_order_responses_are_matched_by_id() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 7_002,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    const N: u64 = 16;
    let reqs: Vec<_> = (0..N).map(|i| request(&spec, &pool, i)).collect();

    // Real payloads to replay, from an in-process service.
    let reference = Service::start(pipeline_config());
    let payloads: Vec<Vec<u8>> = reqs
        .iter()
        .map(|r| encode_response(&reference.call_blocking(r.clone()).unwrap()))
        .collect();
    reference.shutdown();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = {
        let payloads = payloads.clone();
        std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut ids = Vec::new();
            for _ in 0..N {
                let frame = read_frame(&mut conn).unwrap();
                assert_eq!(frame.frame_type, FrameType::Request);
                ids.push(decode_request(&frame.payload).unwrap().id);
            }
            assert_eq!(ids, (0..N).collect::<Vec<_>>(), "burst arrives in order");
            for id in ids.into_iter().rev() {
                write_frame(&mut conn, FrameType::Response, 0, &payloads[id as usize]).unwrap();
            }
        })
    };

    let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
    let responses = client.call_pipelined(&reqs).expect("reverse-order batch");
    for (index, resp) in responses.iter().enumerate() {
        assert_eq!(
            resp.id, index as u64,
            "responses come back in request order"
        );
        assert_eq!(
            encode_response(resp),
            payloads[index],
            "request {index}: wrong payload matched to this id"
        );
    }
    script.join().unwrap();
}

/// Ids are the correlation keys, so a batch that reuses one is rejected
/// client-side before any bytes hit the wire.
#[test]
fn duplicate_ids_in_a_batch_are_rejected_before_sending() {
    let _guard = net_guard();
    let spec = WorkloadSpec::default();
    let pool = scenario_pool(&spec);
    let mut reqs = vec![request(&spec, &pool, 3), request(&spec, &pool, 4)];
    reqs[1].id = reqs[0].id;

    // A listener that never answers: if the client wrongly sends the
    // batch it would hang, so rejection must happen first.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut client =
        NetClient::connect(listener.local_addr().unwrap(), ClientConfig::default()).unwrap();
    match client.call_pipelined(&reqs) {
        Err(NetError::Protocol(msg)) => {
            assert!(msg.contains("reuses id"), "unexpected message: {msg}")
        }
        other => panic!("expected Protocol error for duplicate ids, got {other:?}"),
    }
}
