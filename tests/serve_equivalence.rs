//! Differential oracle: the service must be a *transparent* cache.
//!
//! Every response `fepia-serve` produces — cold-compiled or served from a
//! warm plan cache — must be bitwise identical to what the legacy one-shot
//! paths produce for the same question:
//!
//! * `Verdict`  ⇔ [`makespan_robustness_generic`] (the §3.1 system built
//!   through the generic FePIA machinery, Eq. 1–2 + Eq. 6).
//! * `Origins`  ⇔ a hand-built [`FepiaAnalysis`] evaluated at the shifted
//!   operating point, with the tolerance still anchored to the *scenario*
//!   origin makespan (the plan is compiled once; origins move, bounds
//!   don't).
//! * `Moves`    ⇔ [`makespan_robustness`] (closed form, Eq. 6–7) on the
//!   mapping with that one move applied.
//!
//! The replay runs the recorded workload through the service twice on the
//! same shards: pass 1 is cold (every scenario compiles), pass 2 is warm
//! (the stats delta proves zero compilations) — and both passes must match
//! the oracle bit for bit, so a cache hit can never change a number.

use fepia::core::{
    FeatureSpec, FepiaAnalysis, Perturbation, RadiusVerdict, SumSelected, Tolerance, VerdictKind,
};
use fepia::mapping::{makespan_robustness, makespan_robustness_generic};
use fepia::serve::workload::{request, scenario_pool, WorkloadSpec};
use fepia::serve::{EvalKind, EvalResponse, Scenario, Service, ServiceConfig};

const REQUESTS: u64 = 300;

fn oracle_metric_bits(scenario: &Scenario, kind: &EvalKind) -> Vec<u64> {
    match kind {
        EvalKind::Verdict => {
            let report = makespan_robustness_generic(
                scenario.mapping(),
                scenario.etc(),
                scenario.tau(),
                scenario.opts(),
            )
            .expect("legacy generic oracle");
            vec![report.metric.to_bits()]
        }
        EvalKind::Origins(origins) => {
            // The same analysis `Scenario::compile` builds, evaluated at
            // each shifted origin: tolerance bound anchored to the
            // scenario origin's makespan, features over the base mapping.
            let bound = scenario.tau() * scenario.mapping().makespan(scenario.etc());
            let apps = scenario.mapping().apps();
            origins
                .iter()
                .map(|origin| {
                    let mut analysis = FepiaAnalysis::new(Perturbation::continuous(
                        "ETC vector C",
                        origin.clone(),
                    ));
                    for j in 0..scenario.mapping().machines() {
                        let on_j = scenario.mapping().apps_on(j);
                        if on_j.is_empty() {
                            continue;
                        }
                        analysis.add_feature(
                            FeatureSpec::new(format!("finish-time m_{j}"), Tolerance::upper(bound)),
                            SumSelected::new(on_j, apps),
                        );
                    }
                    analysis
                        .run(scenario.opts())
                        .expect("legacy origin oracle")
                        .metric
                        .to_bits()
                })
                .collect()
        }
        EvalKind::Moves(moves) => moves
            .iter()
            .map(|&(app, dst)| {
                let mut moved = scenario.mapping().clone();
                moved.reassign(app, dst);
                makespan_robustness(&moved, scenario.etc(), scenario.tau())
                    .expect("legacy closed-form oracle")
                    .metric
                    .to_bits()
            })
            .collect(),
        // Curve requests have their own differential oracle
        // (tests/curve_equivalence.rs); the recorded workload never
        // emits them.
        EvalKind::Curve(_) => unreachable!("workload generator emits no curve requests"),
    }
}

fn assert_matches_oracle(resp: &EvalResponse, expected: &[u64], pass: &str) {
    assert_eq!(
        resp.verdicts.len(),
        expected.len(),
        "{pass} request {}: verdict count",
        resp.id
    );
    for (k, (v, &bits)) in resp.verdicts.iter().zip(expected).enumerate() {
        assert_eq!(
            v.kind,
            VerdictKind::Exact,
            "{pass} request {} unit {k}: non-exact {:?}",
            resp.id,
            v.kind
        );
        assert_eq!(
            v.metric_lo.to_bits(),
            bits,
            "{pass} request {} unit {k}: metric_lo {} != oracle {}",
            resp.id,
            v.metric_lo,
            f64::from_bits(bits)
        );
        assert_eq!(v.metric_hi.to_bits(), bits, "exact verdicts are points");
        // Every per-feature radius must be an exact result too.
        assert!(
            v.radii.iter().all(|r| matches!(r, RadiusVerdict::Exact(_))),
            "{pass} request {} unit {k}: degraded radius",
            resp.id
        );
    }
}

#[test]
fn service_responses_match_legacy_paths_cold_and_cached() {
    let spec = WorkloadSpec {
        seed: 4177,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let service = Service::start(ServiceConfig {
        shards: 2,
        workers_per_shard: 1,
        cache_capacity: pool.len(), // all scenarios stay resident
        ..ServiceConfig::default()
    });

    // Record the workload once; the oracle is computed per request from
    // the same deterministic (seed, index) stream the service will see.
    let mut cold_digests = Vec::new();
    for index in 0..REQUESTS {
        let req = request(&spec, &pool, index);
        let expected = oracle_metric_bits(&req.scenario, &req.kind);
        let resp = service.call_blocking(req).expect("cold pass accepted");
        assert_matches_oracle(&resp, &expected, "cold");
        cold_digests.push(fepia::serve::workload::response_digest(&resp));
    }
    let after_cold = service.stats().totals();
    assert!(
        after_cold.cache_misses >= 1,
        "cold pass never compiled a plan"
    );

    // Warm pass: same requests, same oracle — and zero new compilations.
    for index in 0..REQUESTS {
        let req = request(&spec, &pool, index);
        let expected = oracle_metric_bits(&req.scenario, &req.kind);
        let resp = service.call_blocking(req).expect("warm pass accepted");
        assert_matches_oracle(&resp, &expected, "warm");
        assert_eq!(
            fepia::serve::workload::response_digest(&resp),
            cold_digests[index as usize],
            "warm response {index} differs from its cold twin"
        );
    }
    let after_warm = service.stats().totals();
    assert_eq!(
        after_warm.cache_misses, after_cold.cache_misses,
        "warm pass recompiled a cached plan"
    );
    assert_eq!(
        after_warm.cache_hits + after_warm.cache_coalesced
            - (after_cold.cache_hits + after_cold.cache_coalesced),
        REQUESTS,
        "warm pass bypassed the cache"
    );
    service.shutdown();
}
