//! End-to-end Fig. 3 (§4.2): a scaled-down run of the exact experiment
//! pipeline, asserting the qualitative claims the paper makes about the
//! figure.

use fepia_bench::fig3data::{
    robustness_makespan_correlation, run, s1_cluster_fits, s1_theory_slope, Fig3Config,
};

fn sweep(seed: u64, mappings: usize) -> fepia_bench::fig3data::Fig3Data {
    run(&Fig3Config {
        mappings,
        ..Fig3Config::paper(seed)
    })
}

#[test]
fn robustness_and_makespan_are_generally_correlated() {
    // "While robustness and makespan are generally correlated…"
    for seed in [1u64, 2, 3] {
        let d = sweep(seed, 300);
        let r = robustness_makespan_correlation(&d).expect("non-constant sweep");
        assert!(r > 0.5, "seed {seed}: correlation only {r}");
    }
}

#[test]
fn similar_makespans_differ_sharply_in_robustness() {
    // "…for any given value of makespan there are a number of mappings
    // that differ significantly in terms of their actual robustness."
    let d = sweep(4, 500);
    let mut pts: Vec<(f64, f64)> = d
        .points
        .iter()
        .map(|p| (p.makespan, p.robustness))
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
    let mut best_ratio: f64 = 1.0;
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            if (pts[j].0 - pts[i].0) / pts[i].0 > 0.02 {
                break;
            }
            let (lo, hi) = if pts[i].1 <= pts[j].1 {
                (pts[i].1, pts[j].1)
            } else {
                (pts[j].1, pts[i].1)
            };
            if lo > 0.0 {
                best_ratio = best_ratio.max(hi / lo);
            }
        }
    }
    assert!(
        best_ratio > 1.5,
        "no sharp same-makespan robustness differences found (best {best_ratio})"
    );
}

#[test]
fn clusters_form_straight_lines_with_eq6_slopes() {
    // "Some mappings are clustered into groups, such that for all mappings
    // within a group, the robustness increases linearly with the makespan"
    // — and the slope is (τ−1)/√x by Eq. 6.
    let d = sweep(5, 600);
    let fits = s1_cluster_fits(&d);
    let mut checked = 0;
    for (x, (fit, n)) in fits {
        if n < 10 {
            continue;
        }
        assert!(fit.r2 > 0.999, "S1({x}) not a line: r² = {}", fit.r2);
        let theory = s1_theory_slope(d.tau, x);
        assert!(
            (fit.slope - theory).abs() < 0.02 * theory,
            "S1({x}) slope {} vs theory {theory}",
            fit.slope
        );
        checked += 1;
    }
    assert!(checked >= 3, "too few populated clusters ({checked})");
}

#[test]
fn outliers_exist_and_sit_below_their_group_lines() {
    // "Note that all such outlying points lie 'below' the line specified by
    // S1(x)."
    let d = sweep(6, 600);
    let outliers: Vec<_> = d.points.iter().filter(|p| !p.in_s1).collect();
    assert!(
        !outliers.is_empty(),
        "600 random mappings should include S2−S1 outliers"
    );
    for p in outliers {
        let line = s1_theory_slope(d.tau, p.makespan_machine_occupancy) * p.makespan;
        assert!(
            p.robustness <= line + 1e-9,
            "outlier above its cluster line: ρ = {} > {line}",
            p.robustness
        );
    }
}

#[test]
fn load_balance_index_is_not_a_robustness_proxy_either() {
    // The paper: "A similar conclusion could be drawn from the robustness
    // against load balance index plot (not shown here)." Verify similar
    // LBI values coexist with very different robustness.
    let d = sweep(7, 500);
    let mut pts: Vec<(f64, f64)> = d
        .points
        .iter()
        .map(|p| (p.load_balance_index, p.robustness))
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
    let mut best_ratio: f64 = 1.0;
    for w in pts.windows(6) {
        if w[5].0 - w[0].0 < 0.02 {
            let lo = w.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
            let hi = w.iter().map(|p| p.1).fold(0.0, f64::max);
            if lo > 0.0 {
                best_ratio = best_ratio.max(hi / lo);
            }
        }
    }
    assert!(
        best_ratio > 1.5,
        "LBI separated robustness too well (best same-LBI ratio {best_ratio})"
    );
}
