//! Connection churn on the event-loop I/O plane (PR 7 acceptance).
//!
//! The old thread-per-connection server paid two OS threads per accepted
//! socket, so churn meant thread churn. The readiness loop must absorb
//! hundreds of short-lived connections — including peers that vanish
//! mid-frame and connections severed by the `net.read` chaos site — with
//! **zero thread growth**, **zero fd leakage**, typed errors only, and a
//! clean drain at shutdown. Counts come from `/proc/self/task` and
//! `/proc/self/fd`, so this test is Linux-specific (like the CI runner).

#![cfg(target_os = "linux")]

use fepia::net::frame::{Frame, FrameType};
use fepia::net::wire::encode_request;
use fepia::net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia::serve::workload::{moves_request, request, scenario_pool, WorkloadSpec};
use fepia::serve::Service;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

static NET_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests (chaos is process-wide) and silences the backtraces
/// of intentionally injected `serve.worker` panics.
fn net_guard() -> std::sync::MutexGuard<'static, ()> {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let text = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !text.contains("chaos: injected panic") {
                previous(info);
            }
        }));
    });
    let guard = NET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fepia::chaos::clear();
    guard
}

fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").unwrap().count()
}

/// The event loop closes a reaped connection's fd asynchronously to the
/// client's `drop`, so fd samples settle rather than step.
fn await_fd_baseline(baseline: usize, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = fd_count();
        if now <= baseline {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: fd count stuck at {now}, baseline {baseline} — leaked fds"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn hundreds_of_churning_connections_leak_no_threads_or_fds() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 7_003,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);

    let service = Arc::new(Service::start(Default::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("start TCP server");
    let addr = server.local_addr();

    // Warm up one full round-trip so lazy allocations (buffers, the
    // first accepted slot) are behind us, then take the baselines.
    {
        let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
        client.call(&request(&spec, &pool, 0)).expect("warmup call");
    }
    await_fd_baseline(fd_count(), "warmup");
    let threads_before = thread_count();
    let fds_before = fd_count();

    // Phase 1, chaos off: 300 connections in three flavors of rudeness.
    const CHURN: u64 = 300;
    for index in 0..CHURN {
        match index % 3 {
            // A polite client: one call, then drop without goodbye.
            0 => {
                let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
                let resp = client
                    .call(&request(&spec, &pool, index))
                    .expect("chaos-off call succeeds");
                assert_eq!(resp.id, index);
            }
            // A peer that dies mid-frame: half a request, then gone.
            1 => {
                let mut conn = TcpStream::connect(addr).unwrap();
                let frame = Frame::new(
                    FrameType::Request,
                    encode_request(&request(&spec, &pool, index)),
                )
                .encode();
                conn.write_all(&frame[..frame.len() / 2]).unwrap();
                drop(conn);
            }
            // A connect-and-vanish peer: never writes a byte.
            _ => {
                let conn = TcpStream::connect(addr).unwrap();
                drop(conn);
            }
        }
        // No per-connection threads, ever — sampled mid-churn, not just
        // at the end, so a transient thread pair would be caught too.
        if index % 50 == 0 {
            assert_eq!(
                thread_count(),
                threads_before,
                "connection {index}: the event loop must not spawn threads"
            );
        }
    }
    await_fd_baseline(fds_before, "chaos-off churn");
    assert_eq!(thread_count(), threads_before, "threads after churn");

    // Phase 2, `net.read` chaos at the fixed CI seed: the server tears
    // connections down mid-stream; clients must see typed errors (and
    // recover via reconnect), never a panic, and still nothing may leak.
    fepia::chaos::set_for_test(2_003, 0.2);
    const CHAOS_CHURN: u64 = 100;
    let mut chaos_failures = 0u64;
    for index in 0..CHAOS_CHURN {
        let mut client = NetClient::connect(
            addr,
            ClientConfig {
                max_attempts: 8,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        // moves-only workload: verdicts are chaos-invariant, so any
        // successful response is trustworthy; a typed error after 8
        // attempts is an acceptable (and counted) outcome.
        match client.call(&moves_request(&spec, &pool, index)) {
            Ok(resp) => assert_eq!(resp.id, index),
            Err(e) => {
                chaos_failures += 1;
                let _ = format!("{e}"); // typed, displayable, no panic
            }
        }
    }
    fepia::chaos::clear();
    assert!(
        chaos_failures < CHAOS_CHURN / 2,
        "chaos should cost retries, not most requests: {chaos_failures} failed"
    );
    await_fd_baseline(fds_before, "chaos churn");
    assert_eq!(thread_count(), threads_before, "threads after chaos churn");

    // Clean drain: shutdown returns (no wedged loop), and the counters
    // show the churn was absorbed as typed outcomes.
    let stats = server.shutdown();
    assert!(
        stats.connections >= 1 + CHURN + CHAOS_CHURN,
        "every accepted connection is counted (chaos reconnects add more): {}",
        stats.connections
    );
    assert!(
        stats.decode_errors >= CHURN / 3,
        "each mid-frame disconnect is a typed decode error (got {})",
        stats.decode_errors
    );
    assert!(stats.chaos_drops > 0, "net.read chaos must actually fire");
    Arc::try_unwrap(service)
        .ok()
        .expect("server released its service handle")
        .shutdown();
}
