//! Property tests for plan-cache keying (PR 4 satellite).
//!
//! The cache key must separate everything that changes a number and unify
//! everything that doesn't:
//!
//! * Two scenarios differing **only in `RadiusOptions`** (norm or any
//!   solver knob) must never share a slot — a cached plan embeds its
//!   options, so serving it for different options would silently change
//!   results.
//! * Two scenarios differing in **a single ETC entry** must never share a
//!   slot — one `f64` changes every downstream radius.
//! * Two **bitwise-identical** scenarios from independent allocations must
//!   always collapse to one slot (second lookup is a `Hit` on the same
//!   `Arc`), and a cache-hit response must be bitwise identical to the
//!   cold-compile response for the same request.

use fepia::optim::Norm;
use fepia::serve::cache::PlanCache;
use fepia::serve::workload::verdicts_bitwise_equal;
use fepia::serve::workload::{
    moves_request, request, response_digest, scenario_pool, WorkloadSpec,
};
use fepia::serve::{
    CacheOutcome, CurveGrid, CurveSpec, EvalKind, EvalRequest, Scenario, Service, ServiceConfig,
};
use fepia_etc::EtcMatrix;
use proptest::prelude::*;
use std::sync::Arc;

fn spec_for(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        seed,
        scenarios: 2,
        apps: 8,
        machines: 3,
        ..WorkloadSpec::default()
    }
}

/// Rebuilds `base` with its options mutated in one of eight ways; every
/// mutation changes at least one result-affecting bit of `RadiusOptions`.
fn with_mutated_opts(base: &Scenario, which: usize) -> Arc<Scenario> {
    let mut opts = base.opts().clone();
    match which % 8 {
        0 => opts.norm = Norm::L1,
        1 => opts.norm = Norm::LInf,
        2 => opts.norm = Norm::WeightedL2(vec![1.0; base.etc().apps()]),
        3 => opts.solver.tol *= 2.0,
        4 => opts.solver.max_outer += 1,
        5 => opts.solver.fd_step *= 0.5,
        6 => opts.solver.t_max_factor *= 2.0,
        _ => opts.solver.root.max_iter += 1,
    }
    Arc::new(
        Scenario::new(
            Arc::clone(base.etc()),
            base.mapping().clone(),
            base.tau(),
            opts,
        )
        .expect("mutated options stay valid"),
    )
}

/// Rebuilds `base` with exactly one ETC entry nudged by one ULP-scale
/// relative step — the smallest change that is still a different `f64`.
fn with_mutated_etc_entry(base: &Scenario, app: usize, machine: usize) -> Arc<Scenario> {
    let etc = base.etc();
    let rows: Vec<Vec<f64>> = (0..etc.apps())
        .map(|i| {
            let mut row = etc.row(i).to_vec();
            if i == app {
                row[machine] = row[machine] * (1.0 + 1e-9) + 1e-12;
            }
            row
        })
        .collect();
    Arc::new(
        Scenario::new(
            Arc::new(EtcMatrix::from_rows(rows)),
            base.mapping().clone(),
            base.tau(),
            base.opts().clone(),
        )
        .expect("perturbed ETC stays valid"),
    )
}

fn base_curve_spec() -> CurveSpec {
    CurveSpec {
        grid: CurveGrid::Explicit(vec![1.0, 1.2, 1.5, 2.0]),
    }
}

/// Rebuilds the base curve spec with its grid mutated in one of seven
/// ways; every mutation changes at least one result-affecting bit.
fn with_mutated_grid(which: usize) -> CurveSpec {
    let levels = vec![1.0, 1.2, 1.5, 2.0];
    let grid = match which % 7 {
        0 => {
            // One level nudged by ~1 ULP — still a different f64.
            let mut l = levels;
            l[2] = l[2] * (1.0 + 1e-9) + 1e-12;
            CurveGrid::Explicit(l)
        }
        1 => {
            let mut l = levels;
            l.push(3.0);
            CurveGrid::Explicit(l)
        }
        2 => {
            let mut l = levels;
            l.pop();
            CurveGrid::Explicit(l)
        }
        3 => CurveGrid::Adaptive {
            tau_lo: 1.0,
            tau_hi: 2.0,
            max_depth: 4,
            rho_resolution: 1e-3,
        },
        4 => CurveGrid::Adaptive {
            tau_lo: 1.0,
            tau_hi: 2.0,
            max_depth: 5,
            rho_resolution: 1e-3,
        },
        5 => CurveGrid::Adaptive {
            tau_lo: 1.0,
            tau_hi: 2.0,
            max_depth: 4,
            rho_resolution: 2e-3,
        },
        _ => CurveGrid::Adaptive {
            tau_lo: 1.0,
            tau_hi: 2.0 * (1.0 + 1e-9),
            max_depth: 4,
            rho_resolution: 1e-3,
        },
    };
    CurveSpec { grid }
}

proptest! {
    /// Scenarios that differ only in their `RadiusOptions` never collide:
    /// distinct fingerprints, `same_as` false, and the cache compiles a
    /// fresh plan instead of serving the other scenario's.
    #[test]
    fn options_only_differences_never_collide(seed in 0u64..60, which in 0usize..8) {
        let pool = scenario_pool(&spec_for(seed));
        let base = &pool[0];
        let mutated = with_mutated_opts(base, which);

        prop_assert!(base.fingerprint() != mutated.fingerprint(),
            "options mutation {which} left the fingerprint unchanged");
        prop_assert!(!base.same_as(&mutated));

        let cache = PlanCache::new(8);
        let (a, _) = cache.get_or_compile(base);
        let (b, outcome) = cache.get_or_compile(&mutated);
        let (a, b) = (a.expect("base compiles"), b.expect("mutated compiles"));
        prop_assert_eq!(outcome, CacheOutcome::Compiled);
        prop_assert!(!Arc::ptr_eq(&a, &b), "distinct options shared one compiled plan");
    }

    /// Changing one ETC entry — even by ~1 ULP — changes the key.
    #[test]
    fn single_etc_entry_differences_never_collide(
        seed in 0u64..60,
        app in 0usize..8,
        machine in 0usize..3,
    ) {
        let pool = scenario_pool(&spec_for(seed));
        let base = &pool[0];
        let mutated = with_mutated_etc_entry(base, app, machine);

        prop_assert!(base.fingerprint() != mutated.fingerprint(),
            "ETC entry ({app},{machine}) mutation left the fingerprint unchanged");
        prop_assert!(!base.same_as(&mutated));
    }

    /// Bitwise-identical scenarios from independent allocations always
    /// collapse: equal fingerprints, `same_as`, and a cache `Hit` on the
    /// very same compiled `Arc`.
    #[test]
    fn identical_scenarios_always_hit(seed in 0u64..60) {
        let spec = spec_for(seed);
        let pool_a = scenario_pool(&spec);
        let pool_b = scenario_pool(&spec); // independent allocation
        let (twin_a, twin_b) = (&pool_a[0], &pool_b[0]);

        prop_assert!(!Arc::ptr_eq(twin_a, twin_b));
        prop_assert_eq!(twin_a.fingerprint(), twin_b.fingerprint());
        prop_assert!(twin_a.same_as(twin_b));

        let cache = PlanCache::new(8);
        let (first, cold) = cache.get_or_compile(twin_a);
        let (second, warm) = cache.get_or_compile(twin_b);
        prop_assert_eq!(cold, CacheOutcome::Compiled);
        prop_assert_eq!(warm, CacheOutcome::Hit);
        prop_assert!(Arc::ptr_eq(&first.expect("compiles"), &second.expect("hits")));
    }

    /// A cache-hit response is bitwise identical to the cold-compile
    /// response for the same request — hits may only change latency.
    #[test]
    fn cached_responses_are_bitwise_identical_to_cold(seed in 0u64..40, index in 0u64..50) {
        let spec = spec_for(seed);
        let pool = scenario_pool(&spec);
        let service = Service::start(ServiceConfig {
            shards: 1,
            workers_per_shard: 1,
            ..ServiceConfig::default()
        });

        let mixed = request(&spec, &pool, index);
        let moves = moves_request(&spec, &pool, index.wrapping_add(1_000));
        for req in [mixed, moves] {
            let twice = [
                service.call_blocking(req.clone()).expect("cold accepted"),
                service.call_blocking(req).expect("warm accepted"),
            ];
            prop_assert_eq!(twice[1].cache, Some(CacheOutcome::Hit));
            prop_assert_eq!(
                response_digest(&twice[0]),
                response_digest(&twice[1]),
                "cache hit changed response bits for request {}", twice[0].id
            );
        }
        service.shutdown();
    }

    /// Two curve requests differing only in their grid spec never share a
    /// response key: the spec fingerprint separates every level bit, the
    /// grid mode and each adaptive knob, so a served curve can never be
    /// replayed for a different grid over the same scenario.
    #[test]
    fn curve_specs_differing_in_grid_never_collide(seed in 0u64..60, which in 0usize..7) {
        let pool = scenario_pool(&spec_for(seed));
        let scenario_fp = pool[0].fingerprint();
        let base = base_curve_spec();
        let mutated = with_mutated_grid(which);

        prop_assert!(base.fingerprint() != mutated.fingerprint(),
            "grid mutation {which} left the curve-spec fingerprint unchanged");
        prop_assert!(base.request_key(scenario_fp) != mutated.request_key(scenario_fp),
            "grid mutation {which} left the request key unchanged");
        // The scenario still separates: the same spec over different
        // scenarios must not collide either.
        prop_assert!(
            base.request_key(scenario_fp) != base.request_key(pool[1].fingerprint()),
            "request key ignored the scenario fingerprint"
        );
    }

    /// Identical (scenario, spec) pairs always hit: the repeat reuses the
    /// compiled plan and returns a bitwise-identical curve — points and
    /// metadata both.
    #[test]
    fn identical_curve_requests_always_hit_bitwise(seed in 0u64..40, which in 0usize..7) {
        let spec = spec_for(seed);
        let pool = scenario_pool(&spec);
        let service = Service::start(ServiceConfig {
            shards: 1,
            workers_per_shard: 1,
            ..ServiceConfig::default()
        });

        let req = EvalRequest {
            id: 7,
            scenario: Arc::clone(&pool[0]),
            kind: EvalKind::Curve(with_mutated_grid(which)),
        };
        let cold = service.call_blocking(req.clone()).expect("cold accepted");
        let warm = service.call_blocking(req).expect("warm accepted");
        prop_assert_eq!(cold.cache, Some(CacheOutcome::Compiled));
        prop_assert_eq!(warm.cache, Some(CacheOutcome::Hit));
        prop_assert!(
            verdicts_bitwise_equal(&warm.verdicts, &cold.verdicts),
            "cache hit changed a curve point"
        );
        prop_assert_eq!(&warm.curve, &cold.curve, "cache hit changed curve metadata");
        service.shutdown();
    }
}
