//! Workspace soak suite for `fepia-serve` (PR 4 acceptance).
//!
//! Two soaks, both multi-threaded and seeded:
//!
//! * **Deterministic soak** — ≥100k requests from 8 client threads through
//!   a sharded service, twice with the same seed; the order-independent
//!   aggregate digest must be bitwise identical across runs (and every
//!   response individually deterministic by construction). A run manifest
//!   with the digest and counters is written to the results directory so
//!   CI can archive it.
//! * **Chaos soak** — a moves-only workload under `FEPIA_CHAOS`-style
//!   injection (fixed seed, 20% rate) with enqueue/worker delays, worker
//!   panics and `DeltaEval` cached-state poisoning all firing. Every
//!   response must still be `Exact`-certified and bitwise equal to a
//!   ground-truth replay computed with chaos off — faults may cost
//!   retries, never wrong numbers.
//!
//! Chaos configuration is process-global, so both tests share one lock
//! (the deterministic soak must never observe another test's injections).

use fepia::core::VerdictKind;
use fepia::mapping::makespan_robustness;
use fepia::serve::workload::{
    combine_digests, moves_request, request, response_digest, scenario_pool, WorkloadSpec,
};
use fepia::serve::{EvalKind, EvalResponse, Service, ServiceConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, Once};
use std::thread;

/// Serializes the soaks: chaos state is process-wide.
static SOAK_LOCK: Mutex<()> = Mutex::new(());

/// Holds the lock (tolerating poisoning from a failed test) with the panic
/// hook installed (silencing intentional injected panics) and chaos
/// initially disabled.
fn soak_guard() -> std::sync::MutexGuard<'static, ()> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let text = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !text.contains("chaos: injected panic") {
                previous(info);
            }
        }));
    });
    let guard = SOAK_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fepia::chaos::clear();
    guard
}

fn results_dir() -> PathBuf {
    let dir = std::env::var_os("FEPIA_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

const CLIENTS: u64 = 8;
const SOAK_REQUESTS: u64 = 100_000;
/// In-flight window per client: deep enough to exercise queue depth and
/// coalescing, shallow enough that 8 clients stay under the queue caps.
const WINDOW: usize = 32;

/// Drives `total` requests of `spec` through `service` from [`CLIENTS`]
/// client threads (thread `t` owns indices `t, t+CLIENTS, ...`), asserting
/// per-response sanity via `check`, and returns the order-independent
/// aggregate digest.
fn drive(
    service: &Service,
    spec: &WorkloadSpec,
    total: u64,
    moves_only: bool,
    check: impl Fn(&EvalResponse) + Sync,
) -> u64 {
    let pool = scenario_pool(spec);
    let digests: Vec<u64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let pool = &pool;
                let check = &check;
                scope.spawn(move || {
                    let mut digest = 0u64;
                    let mut window = Vec::with_capacity(WINDOW);
                    let drain = |window: &mut Vec<fepia::serve::Ticket>, digest: &mut u64| {
                        for ticket in window.drain(..) {
                            let resp = ticket.wait().expect("worker answers every ticket");
                            check(&resp);
                            *digest = combine_digests([*digest, response_digest(&resp)]);
                        }
                    };
                    let mut index = t;
                    while index < total {
                        let req = if moves_only {
                            moves_request(spec, pool, index)
                        } else {
                            request(spec, pool, index)
                        };
                        let ticket = service
                            .submit_blocking(req)
                            .expect("backpressure admission never sheds");
                        window.push(ticket);
                        if window.len() == WINDOW {
                            drain(&mut window, &mut digest);
                        }
                        index += CLIENTS;
                    }
                    drain(&mut window, &mut digest);
                    digest
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    combine_digests(digests)
}

fn soak_service() -> Service {
    Service::start(ServiceConfig {
        shards: 4,
        workers_per_shard: 2,
        queue_capacity: 512,
        cache_capacity: 16,
        ..ServiceConfig::default()
    })
}

#[test]
fn deterministic_soak_100k_is_bitwise_reproducible() {
    let _guard = soak_guard();
    let spec = WorkloadSpec {
        seed: 2003,
        ..WorkloadSpec::default()
    };

    let mut digests = Vec::new();
    let mut totals = Vec::new();
    for run in 0..2 {
        let service = soak_service();
        let digest = drive(&service, &spec, SOAK_REQUESTS, false, |resp| {
            // The clean soak must never degrade: affine features + healthy
            // inputs give exact (or infeasible-at-origin) verdicts only.
            for v in &resp.verdicts {
                assert!(v.is_exact(), "request {} degraded to {:?}", resp.id, v.kind);
            }
            assert_eq!(resp.attempts, 1, "request {} needed retries", resp.id);
        });
        let stats = service.shutdown();
        let t = stats.totals();
        assert_eq!(t.completed, SOAK_REQUESTS, "run {run} dropped responses");
        assert_eq!(t.shed_full + t.shed_shutdown, 0, "run {run} shed work");
        assert_eq!(t.worker_panics, 0, "run {run} panicked");
        // 8 scenarios over 100k requests: the plan cache must be doing
        // nearly all the work (each shard compiles each scenario once).
        assert!(
            t.cache_hit_rate() > 0.99,
            "run {run} hit rate {:.4}",
            t.cache_hit_rate()
        );
        digests.push(digest);
        totals.push(t);
    }

    let manifest_path = results_dir().join("serve_soak_manifest.json");
    fepia_obs::RunManifest::new("serve_soak")
        .param("seed", spec.seed)
        .param("requests", SOAK_REQUESTS)
        .param("clients", CLIENTS)
        .param("digest_run1", format!("{:016x}", digests[0]))
        .param("digest_run2", format!("{:016x}", digests[1]))
        .param("cache_hits", totals[0].cache_hits)
        .param("cache_misses", totals[0].cache_misses)
        .param("coalesced", totals[0].cache_coalesced)
        .output(
            results_dir()
                .join("serve_soak_manifest.json")
                .display()
                .to_string(),
        )
        .write_to(&manifest_path)
        .expect("write soak manifest");

    assert_eq!(
        digests[0], digests[1],
        "same-seed soak aggregates differ: {:016x} vs {:016x}",
        digests[0], digests[1]
    );
}

const CHAOS_REQUESTS: u64 = 20_000;

#[test]
fn chaos_soak_certifies_every_response_and_none_silently_wrong() {
    let _guard = soak_guard();
    let spec = WorkloadSpec {
        seed: 777,
        scenarios: 6,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);

    // Ground truth first, with chaos off: the exact metric bits every moved
    // mapping must report, via the legacy closed form (Eq. 6–7).
    let expected: Vec<Vec<u64>> = (0..CHAOS_REQUESTS)
        .map(|index| {
            let req = moves_request(&spec, &pool, index);
            let EvalKind::Moves(moves) = &req.kind else {
                panic!("moves-only workload produced {:?}", req.kind);
            };
            moves
                .iter()
                .map(|&(app, dst)| {
                    let mut moved = req.scenario.mapping().clone();
                    moved.reassign(app, dst);
                    makespan_robustness(&moved, req.scenario.etc(), req.scenario.tau())
                        .expect("legacy oracle")
                        .metric
                        .to_bits()
                })
                .collect()
        })
        .collect();
    let expected = Arc::new(expected);

    // Now the same workload under injection: delays at serve.enqueue /
    // serve.worker, panics at serve.worker (contained + retried), cached-
    // state poisoning at mapping.delta.load (self-healed from the ETC).
    fepia::chaos::set_for_test(20_003, 0.2);
    let service = Service::start(ServiceConfig {
        shards: 4,
        workers_per_shard: 2,
        queue_capacity: 512,
        cache_capacity: 16,
        // At 20% panic rate per attempt, 16 attempts make an all-panic
        // request a ~1e-11 event over the whole soak: every response is
        // expected to certify.
        worker_attempts: 16,
        ..ServiceConfig::default()
    });
    let expected_check = Arc::clone(&expected);
    drive(&service, &spec, CHAOS_REQUESTS, true, move |resp| {
        let want = &expected_check[resp.id as usize];
        assert_eq!(
            resp.verdicts.len(),
            want.len(),
            "request {} verdict count",
            resp.id
        );
        for (k, (v, &bits)) in resp.verdicts.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                v.kind,
                VerdictKind::Exact,
                "request {} move {k}: degraded to {:?} under chaos",
                resp.id,
                v.kind
            );
            assert_eq!(
                v.metric_hi.to_bits(),
                bits,
                "request {} move {k}: SILENTLY WRONG metric {} vs ground truth {}",
                resp.id,
                v.metric_hi,
                f64::from_bits(bits)
            );
            assert_eq!(v.metric_lo.to_bits(), bits, "exact verdicts are points");
        }
    });
    let totals = service.shutdown().totals();
    fepia::chaos::clear();

    assert_eq!(totals.completed, CHAOS_REQUESTS);
    // The injection must actually have been live, or this test proves
    // nothing: at a 20% per-attempt panic rate over 20k requests the
    // expected panic count is in the thousands.
    assert!(
        totals.worker_panics > 100,
        "chaos panics never fired (got {})",
        totals.worker_panics
    );

    let manifest_path = results_dir().join("serve_chaos_soak_manifest.json");
    fepia_obs::RunManifest::new("serve_chaos_soak")
        .param("seed", spec.seed)
        .param("chaos_seed", 20_003u64)
        .param("chaos_rate", 0.2)
        .param("requests", CHAOS_REQUESTS)
        .param("worker_panics", totals.worker_panics)
        .param("completed", totals.completed)
        .write_to(&manifest_path)
        .expect("write chaos soak manifest");
}
