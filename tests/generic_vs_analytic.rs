//! Cross-crate validation: the paper's closed forms (Eq. 6 / hyperplane
//! distances) against the generic FePIA machinery and the raw geometric
//! substrate, on randomized instances.
//!
//! Three independent implementations of the same quantity must agree:
//!
//! 1. `fepia-mapping::makespan_robustness` — Eq. 6 evaluated directly;
//! 2. `fepia-mapping::makespan_robustness_generic` — Eq. 1 through
//!    `fepia-core` with `SumSelected` impacts (analytic affine path);
//! 3. a hand-rolled computation from `fepia-optim::Hyperplane`.

use fepia::core::RadiusOptions;
use fepia::etc::{generate_cvb, EtcParams};
use fepia::mapping::{makespan_robustness, makespan_robustness_generic, Mapping};
use fepia::optim::{Hyperplane, VecN};
use fepia::stats::rng_for;

fn hyperplane_metric(mapping: &Mapping, etc: &fepia::etc::EtcMatrix, tau: f64) -> f64 {
    let bound = tau * mapping.makespan(etc);
    let c_orig = VecN::new(mapping.assigned_times(etc));
    let mut best = f64::INFINITY;
    for j in 0..mapping.machines() {
        let on_j = mapping.apps_on(j);
        if on_j.is_empty() {
            continue;
        }
        let mut normal = VecN::zeros(mapping.apps());
        for &i in &on_j {
            normal[i] = 1.0;
        }
        let h = Hyperplane::new(normal, bound).expect("nonzero normal");
        best = best.min(h.distance(&c_orig));
    }
    best
}

#[test]
fn three_implementations_agree_on_random_instances() {
    for seed in 0..50u64 {
        let params = EtcParams {
            apps: 10 + (seed as usize % 15),
            machines: 2 + (seed as usize % 5),
            ..EtcParams::paper_section_4_2()
        };
        let etc = generate_cvb(&mut rng_for(seed, 0), &params);
        let mapping = Mapping::random(&mut rng_for(seed, 1), params.apps, params.machines);
        let tau = 1.05 + 0.01 * (seed % 40) as f64;

        let analytic = makespan_robustness(&mapping, &etc, tau).unwrap().metric;
        let generic = makespan_robustness_generic(&mapping, &etc, tau, &RadiusOptions::default())
            .unwrap()
            .metric;
        let geometric = hyperplane_metric(&mapping, &etc, tau);

        assert!(
            (analytic - generic).abs() < 1e-9,
            "seed {seed}: Eq.6 {analytic} vs generic {generic}"
        );
        assert!(
            (analytic - geometric).abs() < 1e-9,
            "seed {seed}: Eq.6 {analytic} vs hyperplane {geometric}"
        );
    }
}

#[test]
fn boundary_point_lies_on_bound_and_at_metric_distance() {
    for seed in 0..20u64 {
        let params = EtcParams::paper_section_4_2();
        let etc = generate_cvb(&mut rng_for(seed, 2), &params);
        let mapping = Mapping::random(&mut rng_for(seed, 3), params.apps, params.machines);
        let rob = makespan_robustness(&mapping, &etc, 1.2).unwrap();
        let c_orig = VecN::new(mapping.assigned_times(&etc));
        // Distance from C_orig to C* equals the metric…
        assert!((rob.boundary_etc.distance_l2(&c_orig) - rob.metric).abs() < 1e-9);
        // …and at C* the binding machine's finishing time is exactly τ·M.
        let f_star: f64 = mapping
            .apps_on(rob.binding_machine)
            .iter()
            .map(|&i| rob.boundary_etc[i])
            .sum();
        assert!((f_star - 1.2 * rob.makespan).abs() < 1e-9, "seed {seed}");
    }
}

/// For random probe directions, the boundary crossing along any ray from
/// C_orig is at distance ≥ ρ — ρ really is the minimum over *all*
/// directions, not just the ones the solver looked at.
#[test]
fn metric_is_a_lower_bound_over_random_directions() {
    use rand::Rng;
    let params = EtcParams::paper_section_4_2();
    let etc = generate_cvb(&mut rng_for(99, 0), &params);
    let mapping = Mapping::random(&mut rng_for(99, 1), params.apps, params.machines);
    let tau = 1.2;
    let rob = makespan_robustness(&mapping, &etc, tau).unwrap();
    let bound = tau * rob.makespan;
    let c_orig = mapping.assigned_times(&etc);

    let mut rng = rng_for(99, 2);
    for _ in 0..500 {
        // Random non-negative direction (errors that increase times — the
        // direction family that can actually cross the upper boundary).
        let dir: Vec<f64> = (0..params.apps).map(|_| rng.gen_range(0.0..1.0)).collect();
        let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-9 {
            continue;
        }
        // Find the exact crossing distance along this ray: the first t at
        // which some machine hits the bound. F_j(t) = F_j + t·(Σ_j dir)/norm.
        let mut t_cross = f64::INFINITY;
        for j in 0..mapping.machines() {
            let on_j = mapping.apps_on(j);
            if on_j.is_empty() {
                continue;
            }
            let f_j: f64 = on_j.iter().map(|&i| c_orig[i]).sum();
            let rate: f64 = on_j.iter().map(|&i| dir[i]).sum::<f64>() / norm;
            if rate > 1e-12 {
                t_cross = t_cross.min((bound - f_j) / rate);
            }
        }
        assert!(
            t_cross >= rob.metric - 1e-9,
            "direction crosses at {t_cross} < metric {}",
            rob.metric
        );
    }
}
