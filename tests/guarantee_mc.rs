//! Monte-Carlo validation of the robustness guarantee on **both** example
//! systems — the empirical meaning of Eqs. 7 and 11: any perturbation with
//! Euclidean norm at most ρ leaves every requirement satisfied, and the
//! boundary is tight (a probe just beyond the binding point violates).

use fepia::core::RadiusOptions;
use fepia::etc::{generate_cvb, EtcParams};
use fepia::hiperd::path::enumerate_paths;
use fepia::hiperd::robustness::{build_constraints, load_robustness_with_paths};
use fepia::hiperd::{generate_system, GenParams, HiperdMapping};
use fepia::mapping::{validate_radius_guarantee, Mapping};
use fepia::optim::VecN;
use fepia::stats::dist::standard_normal;
use fepia::stats::rng_for;
use rand::Rng;

#[test]
fn independent_allocation_guarantee_holds() {
    // §3.1 system: 20 seeds × 300 error injections each.
    for seed in 0..20u64 {
        let etc = generate_cvb(&mut rng_for(seed, 0), &EtcParams::paper_section_4_2());
        let mapping = Mapping::random(&mut rng_for(seed, 1), 20, 5);
        let out =
            validate_radius_guarantee(&mapping, &etc, 1.2, 300, &mut rng_for(seed, 2)).unwrap();
        assert!(out.holds(), "seed {seed}: {out:?}");
    }
}

#[test]
fn hiperd_guarantee_holds() {
    // §3.2 system: random load-increase vectors with ‖Δλ‖₂ ≤ ρ must not
    // violate any constraint; pushing 0.5% past the binding boundary point
    // must violate one.
    let sys = generate_system(&mut rng_for(31, 0), &GenParams::paper_section_4_3());
    let paths = enumerate_paths(&sys);
    let opts = RadiusOptions::default();
    let mut rng = rng_for(31, 1);

    let mut validated = 0;
    for k in 0..25u64 {
        let mapping = HiperdMapping::random(&mut rng_for(31, 2 + k), sys.n_apps, sys.n_machines);
        let rob = load_robustness_with_paths(&sys, &mapping, &paths, &opts).unwrap();
        if !(rob.metric.is_finite() && rob.metric > 1.0) {
            continue;
        }
        let set = build_constraints(&sys, &mapping, &paths);
        let lambda_orig = VecN::new(sys.lambda_orig.clone());

        // Inside-radius injections (any direction, like the paper's "any
        // combination of sensor loads").
        for _ in 0..200 {
            let dir: Vec<f64> = (0..sys.n_sensors())
                .map(|_| standard_normal(&mut rng))
                .collect();
            let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-9 {
                continue;
            }
            let scale = rng.gen_range(0.0..1.0) * rob.metric / norm;
            let lambda = lambda_orig.add_scaled(scale, &VecN::new(dir));
            for c in &set.constraints {
                assert!(
                    c.value(&lambda) <= c.bound * (1.0 + 1e-9),
                    "inside-radius violation of {} (mapping {k})",
                    c.name
                );
            }
        }

        // Tightness: 0.5% beyond the binding boundary point.
        let star = rob
            .lambda_star
            .clone()
            .expect("finite metric has a witness");
        let overshoot = lambda_orig.add_scaled(1.005, &(&star - &lambda_orig));
        let violated = set
            .constraints
            .iter()
            .any(|c| c.value(&overshoot) > c.bound);
        assert!(
            violated,
            "no violation just past the boundary (mapping {k})"
        );
        validated += 1;
    }
    assert!(validated >= 10, "too few mappings validated ({validated})");
}

#[test]
fn hiperd_floored_metric_respects_integral_loads() {
    // The floored metric is what the paper quotes for discrete loads: any
    // *integral* load increase with norm ≤ floor(ρ) is safe too (it is ≤ ρ).
    let sys = generate_system(&mut rng_for(32, 0), &GenParams::paper_section_4_3());
    let paths = enumerate_paths(&sys);
    let mapping = HiperdMapping::random(&mut rng_for(32, 1), sys.n_apps, sys.n_machines);
    let rob =
        load_robustness_with_paths(&sys, &mapping, &paths, &RadiusOptions::default()).unwrap();
    if !rob.metric.is_finite() || rob.floored < 1.0 {
        return;
    }
    let set = build_constraints(&sys, &mapping, &paths);
    let lambda_orig = VecN::new(sys.lambda_orig.clone());
    let mut rng = rng_for(32, 2);
    for _ in 0..300 {
        // Random integral increase with norm ≤ floored metric.
        let dir: Vec<f64> = (0..sys.n_sensors())
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
        let scaled: Vec<f64> = dir
            .iter()
            .map(|d| (d * rob.floored / norm).floor())
            .collect();
        let l2 = scaled.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(l2 <= rob.floored + 1e-9);
        let lambda = lambda_orig.add_scaled(1.0, &VecN::new(scaled));
        for c in &set.constraints {
            assert!(c.value(&lambda) <= c.bound * (1.0 + 1e-9));
        }
    }
}
