//! Differential oracle for degradation curves ρ(τ) (the curve tentpole).
//!
//! Every point of a served curve must be *bitwise identical* to an
//! independent single-τ evaluation: compile a fresh [`Scenario`] at that
//! exact τ, evaluate its verdict at the origin, compare every float by
//! bit pattern. The curve engine only swaps the tolerance vector per
//! level — it shares the dot products, dual norms and residuals of one
//! compiled plan — so there is no legitimate source of drift. The oracle
//! is enforced in every serving configuration:
//!
//! * **cold** — first request compiles the plan;
//! * **cached** — the repeat is a cache hit and must not change a bit;
//! * **over TCP** — the wire round-trip (v3 `Curve` frames) is compared
//!   on canonical `encode_response` bytes against an identically
//!   configured in-process service;
//! * **under chaos** (the fixed CI seed `2003:0.2`) — the chaos draw
//!   schedule is a pure function of the seed and per-site counters, and
//!   [`fepia::chaos::set_for_test`] resets those counters, so replaying
//!   the seed before the curve sweep and again before the per-level
//!   single-τ calls makes both consume the *same* poison sequence: the
//!   two runs must agree bitwise even on poisoned points.
//!
//! Plus the tentpole proptests: ρ(τ) never certifies a decrease as τ
//! loosens, and adaptive refinement only emits dense-grid levels and
//! only skips intervals it certified flat.
//!
//! Chaos state is process-global, so every test holds one lock.

use fepia::core::{dense_grid, EvalBudget, PlanVerdict, ResiliencePolicy};
use fepia::net::wire::encode_response;
use fepia::net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia::serve::workload::{scenario_pool, verdicts_bitwise_equal, WorkloadSpec};
use fepia::serve::{
    CacheOutcome, CurveGrid, CurveSpec, Disposition, EvalKind, EvalRequest, Scenario, Service,
    ServiceConfig,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, Once};

static CURVE_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the tests (chaos is process-wide) with the panic hook
/// silencing intentional injected worker panics, chaos initially off.
fn guard() -> std::sync::MutexGuard<'static, ()> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let text = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !text.contains("chaos: injected panic") {
                previous(info);
            }
        }));
    });
    let guard = CURVE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fepia::chaos::clear();
    guard
}

const LEVELS: [f64; 8] = [1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 2.0, 3.0];

fn explicit_curve(scenario: &Arc<Scenario>, id: u64, levels: &[f64]) -> EvalRequest {
    EvalRequest {
        id,
        scenario: Arc::clone(scenario),
        kind: EvalKind::Curve(CurveSpec {
            grid: CurveGrid::Explicit(levels.to_vec()),
        }),
    }
}

/// Recompiles `scenario` at each level τ and evaluates one verdict per
/// level — the independent single-τ oracle the curve must match bitwise.
fn single_tau_truth(scenario: &Arc<Scenario>, levels: &[f64]) -> Vec<PlanVerdict> {
    let policy = ResiliencePolicy::default();
    levels
        .iter()
        .map(|&tau| {
            let solo = Arc::new(
                Scenario::new(
                    Arc::clone(scenario.etc()),
                    scenario.mapping().clone(),
                    tau,
                    scenario.opts().clone(),
                )
                .expect("curve levels are valid scenario taus"),
            );
            let compiled = solo.compile().expect("oracle scenario compiles");
            let mut ws = compiled.plan().workspace();
            compiled.verdict_at_origin(&mut ws, &policy)
        })
        .collect()
}

fn equivalence_config() -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        workers_per_shard: 1,
        queue_capacity: 64,
        cache_capacity: 8,
        ..ServiceConfig::default()
    }
}

fn assert_taus_bitwise(meta: &fepia::serve::CurveMeta, levels: &[f64], context: &str) {
    assert_eq!(meta.taus.len(), levels.len(), "{context}: tau count");
    for (k, (served, requested)) in meta.taus.iter().zip(levels).enumerate() {
        assert_eq!(
            served.to_bits(),
            requested.to_bits(),
            "{context}: tau {k} drifted"
        );
    }
}

#[test]
fn curve_points_bitwise_equal_single_tau_oracle_cold_and_cached() {
    let _guard = guard();
    let spec = WorkloadSpec {
        seed: 6_001,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let service = Service::start(equivalence_config());

    for (s, scenario) in pool.iter().enumerate().take(4) {
        let truth = single_tau_truth(scenario, &LEVELS);
        let req = explicit_curve(scenario, s as u64, &LEVELS);

        let cold = service.call_blocking(req.clone()).expect("cold accepted");
        assert_eq!(
            cold.cache,
            Some(CacheOutcome::Compiled),
            "scenario {s}: first curve request must compile"
        );
        assert!(
            verdicts_bitwise_equal(&cold.verdicts, &truth),
            "scenario {s}: cold curve differs bitwise from single-τ oracle"
        );
        let meta = cold.curve.as_ref().expect("curve meta present");
        assert_taus_bitwise(meta, &LEVELS, "cold");
        assert!(
            meta.monotone,
            "scenario {s}: loosening an upper tolerance cannot certify a ρ decrease"
        );

        let cached = service.call_blocking(req).expect("cached accepted");
        assert_eq!(
            cached.cache,
            Some(CacheOutcome::Hit),
            "scenario {s}: repeat must hit the plan cache"
        );
        assert!(
            verdicts_bitwise_equal(&cached.verdicts, &cold.verdicts),
            "scenario {s}: cache hit changed a curve point"
        );
        assert_eq!(cached.curve, cold.curve, "scenario {s}: meta drifted");
    }
    service.shutdown();
}

#[test]
fn curves_over_tcp_bitwise_equal_in_process_and_oracle() {
    let _guard = guard();
    let spec = WorkloadSpec {
        seed: 6_002,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);

    let reference = Service::start(equivalence_config());
    let served = Arc::new(Service::start(equivalence_config()));
    let server =
        NetServer::start(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    for (s, scenario) in pool.iter().enumerate() {
        let req = explicit_curve(scenario, s as u64, &LEVELS);
        let expected = reference.call_blocking(req.clone()).expect("reference");
        let over_tcp = client.call(&req).expect("tcp curve succeeds chaos-off");
        assert_eq!(
            encode_response(&over_tcp),
            encode_response(&expected),
            "scenario {s}: TCP curve differs from in-process (bitwise)"
        );
        let truth = single_tau_truth(scenario, &LEVELS);
        assert!(
            verdicts_bitwise_equal(&over_tcp.verdicts, &truth),
            "scenario {s}: TCP curve differs bitwise from single-τ oracle"
        );
    }

    // Adaptive grids ride the same frames: wire the spec through and
    // compare the refined response byte-for-byte with in-process.
    let adaptive = EvalRequest {
        id: 99,
        scenario: Arc::clone(&pool[0]),
        kind: EvalKind::Curve(CurveSpec {
            grid: CurveGrid::Adaptive {
                tau_lo: 1.0,
                tau_hi: 2.5,
                max_depth: 5,
                rho_resolution: 1e-3,
            },
        }),
    };
    let expected = reference.call_blocking(adaptive.clone()).unwrap();
    let over_tcp = client.call(&adaptive).unwrap();
    assert_eq!(
        encode_response(&over_tcp),
        encode_response(&expected),
        "adaptive curve differs over TCP"
    );

    assert_eq!(client.reconnects(), 0, "chaos-off must not reconnect");
    let stats = server.shutdown();
    assert_eq!(stats.decode_errors + stats.overloaded + stats.invalid, 0);
    reference.shutdown();
    Arc::try_unwrap(served)
        .ok()
        .expect("server released its service handle")
        .shutdown();
}

/// The fixed CI chaos seed, replayed: `set_for_test` resets every
/// per-site draw counter, and both the curve sweep and the per-level
/// single-τ calls consume exactly `apps` `core.origin` draws per point in
/// level order — so two replays see the *same* poison schedule, and the
/// curve must stay bitwise equal to the independent single-τ calls even
/// on the points chaos corrupted.
#[test]
fn curve_points_bitwise_equal_single_tau_oracle_under_chaos() {
    let _guard = guard();
    let spec = WorkloadSpec {
        seed: 6_003,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let scenario = &pool[0];
    let policy = ResiliencePolicy::default();
    let curve_spec = CurveSpec {
        grid: CurveGrid::Explicit(LEVELS.to_vec()),
    };

    // Everything compiles chaos-off; only evaluation runs under chaos.
    let compiled = scenario.compile().expect("compiles chaos-off");
    let singles: Vec<_> = LEVELS
        .iter()
        .map(|&tau| {
            Arc::new(
                Scenario::new(
                    Arc::clone(scenario.etc()),
                    scenario.mapping().clone(),
                    tau,
                    scenario.opts().clone(),
                )
                .unwrap(),
            )
            .compile()
            .unwrap()
        })
        .collect();
    let clean_truth = single_tau_truth(scenario, &LEVELS);

    fepia::chaos::set_for_test(2_003, 0.2);
    let mut ws = compiled.plan().workspace();
    let (chaos_curve, meta) =
        compiled.curve_verdicts(&curve_spec, &mut ws, &policy, EvalBudget::UNLIMITED);

    // Replay the identical draw schedule for the independent calls.
    fepia::chaos::set_for_test(2_003, 0.2);
    let mut ws = compiled.plan().workspace();
    let chaos_singles: Vec<_> = singles
        .iter()
        .map(|c| c.verdict_at_origin(&mut ws, &policy))
        .collect();
    fepia::chaos::clear();

    assert_taus_bitwise(&meta, &LEVELS, "chaos");
    assert!(
        verdicts_bitwise_equal(&chaos_curve, &chaos_singles),
        "curve under chaos differs bitwise from replayed single-τ calls"
    );
    // Prove the injection actually fired: at 20% over levels × apps
    // draws, the odds every point survived clean are ≈ 0.8^160.
    assert!(
        !verdicts_bitwise_equal(&chaos_curve, &clean_truth),
        "chaos seed 2003:0.2 never poisoned a draw across {} points × {} apps",
        LEVELS.len(),
        scenario.etc().apps()
    );
}

const CHAOS_CURVES: u64 = 60;

/// Over TCP under the fixed chaos seed, bitwise ground truth is out of
/// reach by design: `net.write` tears force client-side re-evaluation
/// (extra `core.origin` draws desync any replayed schedule) and one
/// poison value (1e308) is *finite*, silently perturbing Exact points.
/// What must survive: every request is answered, the served grid is the
/// requested grid, and the monotone flag agrees with the served points
/// under the engine's own certified-decrease rule.
#[test]
fn curve_requests_survive_transport_chaos_with_consistent_metadata() {
    let _guard = guard();
    let spec = WorkloadSpec {
        seed: 6_004,
        scenarios: 6,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);

    fepia::chaos::set_for_test(2_003, 0.2);
    let served = Arc::new(Service::start(ServiceConfig {
        worker_attempts: 16,
        ..equivalence_config()
    }));
    let server =
        NetServer::start(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = NetClient::connect(
        server.local_addr(),
        ClientConfig {
            max_attempts: 16,
            ..ClientConfig::default()
        },
    )
    .unwrap();

    for index in 0..CHAOS_CURVES {
        let scenario = &pool[(index as usize) % pool.len()];
        let req = explicit_curve(scenario, index, &LEVELS);
        let resp = client
            .call(&req)
            .unwrap_or_else(|e| panic!("curve {index} exhausted retries under chaos: {e}"));
        assert_eq!(resp.id, index);
        assert_eq!(
            resp.verdicts.len(),
            LEVELS.len(),
            "request {index}: point count under chaos"
        );
        let meta = resp.curve.as_ref().expect("curve meta survives chaos");
        assert_taus_bitwise(meta, &LEVELS, "chaos tcp");
        // Recompute the flag from the very points served (the engine's
        // rule: no later point's certified hi strictly below an earlier
        // point's certified lo) — transport retries must not detach the
        // metadata from the data.
        let consistent = resp
            .verdicts
            .windows(2)
            .all(|w| w[1].metric_hi.partial_cmp(&w[0].metric_lo) != Some(std::cmp::Ordering::Less));
        assert_eq!(
            meta.monotone, consistent,
            "request {index}: monotone flag inconsistent with served points"
        );
    }
    let stats = server.shutdown();
    fepia::chaos::clear();
    assert!(
        stats.chaos_drops > 0,
        "20% injection over {CHAOS_CURVES} curve requests must actually fire"
    );
    assert!(
        client.reconnects() > 0,
        "dropped connections/torn frames must force reconnects"
    );
    Arc::try_unwrap(served)
        .ok()
        .expect("server released its service handle")
        .shutdown();
}

/// Brownout composes with curves: the §3.1 scenarios are all-affine, so
/// the budgeted evaluation stays Exact and the browned-out curve is still
/// bitwise the full-precision oracle — degraded *budget*, not answers.
#[test]
fn brownout_curves_stay_bitwise_certified_per_point() {
    let _guard = guard();
    let spec = WorkloadSpec {
        seed: 6_005,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let service = Service::start(ServiceConfig {
        force_brownout: true,
        ..equivalence_config()
    });

    let scenario = &pool[0];
    let truth = single_tau_truth(scenario, &LEVELS);
    let resp = service
        .call_blocking(explicit_curve(scenario, 0, &LEVELS))
        .expect("brownout curve accepted");
    assert_eq!(resp.disposition, Disposition::Brownout);
    assert!(
        verdicts_bitwise_equal(&resp.verdicts, &truth),
        "brownout changed an affine curve point"
    );
    let meta = resp.curve.as_ref().expect("curve meta under brownout");
    assert_taus_bitwise(meta, &LEVELS, "brownout");
    assert!(meta.monotone);
    service.shutdown();
}

fn small_scenario(seed: u64) -> Arc<Scenario> {
    scenario_pool(&WorkloadSpec {
        seed,
        scenarios: 1,
        apps: 8,
        machines: 3,
        ..WorkloadSpec::default()
    })
    .remove(0)
}

proptest! {
    /// ρ(τ) with upper tolerances is non-decreasing as τ loosens: the
    /// engine's monotone flag holds on every random scenario, and the
    /// exact affine points (where lo == hi == ρ) really are ordered.
    #[test]
    fn rho_never_certifiably_decreases_as_tau_loosens(seed in 0u64..200) {
        let _guard = guard();
        let scenario = small_scenario(seed);
        let compiled = scenario.compile().unwrap();
        let levels: Vec<f64> = (0..=10).map(|k| 1.0 + 0.2 * k as f64).collect();
        let mut ws = compiled.plan().workspace();
        let (points, meta) = compiled.curve_verdicts(
            &CurveSpec { grid: CurveGrid::Explicit(levels.clone()) },
            &mut ws,
            &ResiliencePolicy::default(),
            EvalBudget::UNLIMITED,
        );
        prop_assert_eq!(points.len(), levels.len());
        prop_assert!(meta.monotone, "seed {}: certified decrease", seed);
        for (k, w) in points.windows(2).enumerate() {
            prop_assert!(
                w[1].metric_hi.partial_cmp(&w[0].metric_lo) != Some(std::cmp::Ordering::Less),
                "seed {}: ρ dropped between levels {} and {}",
                seed, k, k + 1
            );
        }
    }

    /// Adaptive refinement only ever emits levels of the dense dyadic
    /// grid (bitwise — same formula, same floats, same verdicts), keeps
    /// both endpoints, and any dense level it skips lies inside an
    /// interval it certified flat to within the resolution.
    #[test]
    fn adaptive_refinement_never_skips_an_uncertified_dense_level(
        seed in 0u64..100,
        depth in 2u32..6,
        res_exp in 0i32..6,
    ) {
        let _guard = guard();
        let scenario = small_scenario(seed);
        let compiled = scenario.compile().unwrap();
        let policy = ResiliencePolicy::default();
        let (lo, hi) = (1.0, 2.5);
        let resolution = 10f64.powi(-res_exp);

        let mut ws = compiled.plan().workspace();
        let (adaptive, ameta) = compiled.curve_verdicts(
            &CurveSpec {
                grid: CurveGrid::Adaptive {
                    tau_lo: lo,
                    tau_hi: hi,
                    max_depth: depth,
                    rho_resolution: resolution,
                },
            },
            &mut ws,
            &policy,
            EvalBudget::UNLIMITED,
        );
        let dense_levels = dense_grid(lo, hi, depth);
        let (dense, _) = compiled.curve_verdicts(
            &CurveSpec { grid: CurveGrid::Explicit(dense_levels.clone()) },
            &mut ws,
            &policy,
            EvalBudget::UNLIMITED,
        );

        // Every adaptive point sits on the dense lattice, bitwise equal
        // to the dense sweep's verdict at the same level.
        let mut indices = Vec::with_capacity(ameta.taus.len());
        for (k, tau) in ameta.taus.iter().enumerate() {
            let j = dense_levels
                .iter()
                .position(|d| d.to_bits() == tau.to_bits());
            prop_assert!(
                j.is_some(),
                "adaptive level {} (point {}) is not on the dense grid", tau, k
            );
            let j = j.unwrap();
            prop_assert!(
                verdicts_bitwise_equal(&adaptive[k..k + 1], &dense[j..j + 1]),
                "adaptive point {} differs bitwise from dense point {}", k, j
            );
            indices.push(j);
        }
        prop_assert_eq!(indices[0], 0, "lower endpoint missing");
        prop_assert_eq!(
            *indices.last().unwrap(),
            dense_levels.len() - 1,
            "upper endpoint missing"
        );

        // A skipped dense interval (index gap > 1) must have been
        // certified flat by the engine's own rule: both endpoints
        // unbounded, or a certified ρ-change within the resolution.
        for (k, w) in indices.windows(2).enumerate() {
            prop_assert!(w[0] < w[1], "indices not strictly ascending");
            if w[1] - w[0] > 1 {
                let (a, b) = (&adaptive[k], &adaptive[k + 1]);
                let both_unbounded =
                    a.metric_lo == f64::INFINITY && b.metric_hi == f64::INFINITY;
                let gap = (b.metric_hi - a.metric_lo).abs();
                prop_assert!(
                    both_unbounded || gap <= resolution,
                    "skipped interval [{}, {}] was not certified flat (gap {})",
                    dense_levels[w[0]], dense_levels[w[1]], gap
                );
            }
        }
    }
}
