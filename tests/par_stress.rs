//! Concurrency stress for `fepia-par`'s quarantine/re-dispatch driver.
//!
//! [`par_map_dynamic_catch_with`] promises: every input item resolves to
//! exactly one slot in input order — `Ok` if any attempt succeeds, a typed
//! [`TaskError::Panicked`] carrying the attempt count if all attempts
//! panic — with no lost, duplicated, or reordered results, regardless of
//! worker count or scheduling. This test hammers that promise with a
//! *seeded panic schedule*: task `i` panics on attempt `a` iff a
//! SplitMix64 draw on `(i, a)` says so, which makes each item's attempt
//! trajectory a pure function of the seed. Running at 1, 2, and 8 threads
//! must then produce identical outcomes and identical per-item attempt
//! counts — the work-stealing order may differ, the results may not.

use fepia::par::{par_map_dynamic_catch_with, CatchConfig, ParConfig, TaskError};
use fepia::stats::subseed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

const ITEMS: usize = 2_000;
const MAX_ATTEMPTS: usize = 3;
const SEED: u64 = 0x5ca1_ab1e;
const PANIC_MARK: &str = "par-stress: scheduled panic";

/// Suppress the backtrace spam from the thousands of *intentional* panics;
/// anything else still prints.
fn quiet_scheduled_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let text = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !text.contains(PANIC_MARK) {
                previous(info);
            }
        }));
    });
}

/// Does task `item` panic on its `attempt`-th run (1-based)? ~1/3 per
/// attempt, so ~3.7% of items exhaust all three attempts.
fn panics_on(item: usize, attempt: usize) -> bool {
    subseed(SEED, (item as u64) * 64 + attempt as u64).is_multiple_of(3)
}

/// The attempt count the schedule predicts for `item`: first clean
/// attempt, or `MAX_ATTEMPTS` when none is.
fn predicted_attempts(item: usize) -> usize {
    (1..=MAX_ATTEMPTS)
        .find(|&a| !panics_on(item, a))
        .unwrap_or(MAX_ATTEMPTS)
}

fn predicted_ok(item: usize) -> bool {
    (1..=MAX_ATTEMPTS).any(|a| !panics_on(item, a))
}

/// Runs the sweep at `threads` and returns per-item `(outcome, attempts)`,
/// where outcome is `Ok(value)` / `Err(reported_attempts)`.
fn run_sweep(threads: usize) -> Vec<(Result<u64, usize>, usize)> {
    let items: Vec<usize> = (0..ITEMS).collect();
    let tries: Vec<AtomicUsize> = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect();

    let results = par_map_dynamic_catch_with(
        &items,
        &ParConfig {
            threads: Some(threads),
            sequential_below: 1,
        },
        &CatchConfig {
            max_attempts: MAX_ATTEMPTS,
        },
        || (),
        |_state, i, &item| {
            assert_eq!(i, item, "driver handed task {item} the wrong index {i}");
            let attempt = tries[item].fetch_add(1, Ordering::SeqCst) + 1;
            assert!(
                attempt <= MAX_ATTEMPTS,
                "task {item} dispatched {attempt} times"
            );
            if panics_on(item, attempt) {
                panic!("{PANIC_MARK} (item {item}, attempt {attempt})");
            }
            // The value is a pure function of the item, so any successful
            // attempt — first or re-dispatched — must agree.
            subseed(SEED ^ 0xdead_beef, item as u64)
        },
        // no scratch state to verify here; () re-init is trivially correct
    );

    assert_eq!(results.len(), ITEMS, "driver lost or duplicated slots");
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            let outcome = match r {
                Ok(v) => Ok(v),
                Err(TaskError::Panicked { attempts, message }) => {
                    assert!(
                        message.contains(PANIC_MARK),
                        "task {i} failed with foreign panic: {message}"
                    );
                    Err(attempts)
                }
            };
            (outcome, tries[i].load(Ordering::SeqCst))
        })
        .collect()
}

#[test]
fn quarantine_redispatch_loses_nothing_at_any_thread_count() {
    quiet_scheduled_panics();

    let baseline = run_sweep(1);

    // The schedule itself is the oracle: outcome and attempt count per
    // item are predictable before running anything.
    let mut exhausted = 0usize;
    for (i, (outcome, attempts)) in baseline.iter().enumerate() {
        assert_eq!(
            *attempts,
            predicted_attempts(i),
            "item {i}: attempt count off-schedule"
        );
        match outcome {
            Ok(v) => {
                assert!(predicted_ok(i), "item {i} succeeded off-schedule");
                assert_eq!(*v, subseed(SEED ^ 0xdead_beef, i as u64));
            }
            Err(reported) => {
                assert!(!predicted_ok(i), "item {i} failed off-schedule");
                assert_eq!(
                    *reported, MAX_ATTEMPTS,
                    "item {i}: TaskError must report the full attempt budget"
                );
                exhausted += 1;
            }
        }
    }
    // The stress is real only if both populations are well represented.
    assert!(
        exhausted > ITEMS / 100,
        "too few all-attempts-panic items ({exhausted}) to stress quarantine"
    );
    assert!(
        baseline.iter().filter(|(o, _)| o.is_ok()).count() > ITEMS / 2,
        "too few successes to stress re-dispatch bookkeeping"
    );

    // Thread count must be invisible in the results.
    for threads in [2usize, 8] {
        let run = run_sweep(threads);
        assert_eq!(
            run, baseline,
            "{threads}-thread sweep diverged from sequential baseline"
        );
    }
}
