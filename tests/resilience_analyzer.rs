//! Analyzer correctness on hand-written telemetry fixtures (PR 6
//! acceptance): every resilience measure is checked against values worked
//! out by hand, so a drifting window/recovery/percentile definition fails
//! loudly rather than silently re-tuning the CI gate.

use fepia_obs::{analyze, AnalyzerConfig, ResilienceThresholds, Telemetry};

fn span(t_us: u64, id: u64, units: u64, degraded: u64) -> String {
    format!(
        r#"{{"schema":"fepia.event/v1","event":"trace.span","trace":"{:016x}","stage":"worker.exec","seq":3,"id":{id},"t_us":{t_us},"us":12.5,"shard":0,"units":{units},"degraded":{degraded},"attempts":1}}"#,
        0xabc0_0000_0000_0000u64 | id
    )
}

fn burst(phase: &str, t_us: u64) -> String {
    format!(
        r#"{{"schema":"fepia.event/v1","event":"chaos.burst","phase":"{phase}","t_us":{t_us}}}"#
    )
}

/// One burst with a lingering degraded tail: exact fraction, window
/// fractions, AUD, and recovery time.
#[test]
fn single_burst_measures_are_exact() {
    // Timeline (default 100 ms windows, t_min = 0):
    //   w0 [0, 100k):      10 units, 0 degraded
    //   burst start 50k
    //   w1 [100k, 200k):   10 units, 5 degraded  (during the burst)
    //   burst end 150k
    //   w2 [200k, 300k):   10 units, 2 degraded  (tail at t = 250k)
    //   w3 [300k, 400k):   10 units, 0 degraded
    let lines = vec![
        span(0, 1, 10, 0),
        burst("start", 50_000),
        span(100_000, 2, 10, 5),
        burst("end", 150_000),
        span(250_000, 3, 10, 2),
        span(300_000, 4, 10, 0),
    ];
    let telemetry = Telemetry::from_lines(&lines);
    assert_eq!(telemetry.spans.len(), 4);
    assert_eq!(telemetry.bursts.len(), 1);
    assert_eq!(telemetry.skipped, 0);

    let report = analyze(&telemetry, &AnalyzerConfig::default());
    assert_eq!(report.requests, 4);
    assert_eq!(report.units, 40);
    assert_eq!(report.degraded_units, 7);
    assert_eq!(report.degraded_fraction(), 7.0 / 40.0);
    assert_eq!(report.bursts, 1);

    // The tail degraded verdict at 250k is 100 ms after the burst end.
    assert_eq!(report.recovery_us, 100_000);

    // Window fractions 0, 0.5, 0.2, 0 over 0.1 s windows.
    assert_eq!(report.windows.len(), 4);
    let fractions: Vec<f64> = report.windows.iter().map(|w| w.fraction()).collect();
    assert_eq!(fractions, vec![0.0, 0.5, 0.2, 0.0]);
    assert!((report.aud_seconds - 0.07).abs() < 1e-12);
}

/// Recovery attribution is bounded by the next burst's start: degradation
/// inside burst 2 never counts as burst 1's tail.
#[test]
fn recovery_is_bounded_by_the_next_burst() {
    let lines = vec![
        burst("start", 0),
        span(50_000, 1, 1, 1),
        burst("end", 100_000),
        span(160_000, 2, 1, 1), // burst 1 tail: 60 ms after its end
        burst("start", 200_000),
        span(250_000, 3, 1, 1), // inside burst 2: attributable to neither tail
        burst("end", 300_000),
        span(330_000, 4, 1, 1), // burst 2 tail: 30 ms after its end
        span(400_000, 5, 1, 0),
    ];
    let report = analyze(&Telemetry::from_lines(&lines), &AnalyzerConfig::default());
    assert_eq!(report.bursts, 2);
    assert_eq!(
        report.recovery_us, 60_000,
        "worst tail is burst 1's 60 ms, not burst 2's in-burst degradation"
    );
}

/// A clean stream after every burst recovers instantly.
#[test]
fn clean_post_burst_stream_has_zero_recovery() {
    let lines = vec![
        burst("start", 0),
        span(50_000, 1, 4, 4),
        burst("end", 100_000),
        span(200_000, 2, 4, 0),
        span(300_000, 3, 4, 0),
    ];
    let report = analyze(&Telemetry::from_lines(&lines), &AnalyzerConfig::default());
    assert_eq!(report.recovery_us, 0);
    assert_eq!(report.degraded_fraction(), 4.0 / 12.0);
}

/// Nearest-rank percentiles on a known 1..=100 duration ladder.
#[test]
fn stage_percentiles_are_nearest_rank_exact() {
    let lines: Vec<String> = (1..=100)
        .map(|i| {
            format!(
                r#"{{"schema":"fepia.event/v1","event":"trace.span","trace":"{:016x}","stage":"net.read","seq":1,"id":{i},"us":{i}.0}}"#,
                i
            )
        })
        .collect();
    let report = analyze(&Telemetry::from_lines(&lines), &AnalyzerConfig::default());
    assert_eq!(report.stages.len(), 1);
    let s = &report.stages[0];
    assert_eq!(s.stage, "net.read");
    assert_eq!(s.count, 100);
    assert_eq!(s.p50_us, 50.0);
    assert_eq!(s.p99_us, 99.0);
    assert_eq!(s.p999_us, 100.0);
    assert_eq!(s.max_us, 100.0);
}

/// Hostile inputs: garbage lines are counted and skipped, degraded counts
/// clamp to the unit count, and an unterminated burst is dropped.
#[test]
fn analyzer_is_total_on_hostile_telemetry() {
    let lines = vec![
        "not json at all".to_string(),
        r#"{"event":"trace.span","trace":"xyz","stage":"worker.exec"}"#.to_string(), // bad trace hex
        span(0, 1, 2, 5),       // degraded 5 of 2 units: clamps to 2
        burst("start", 10_000), // never ends: dropped
        String::new(),          // blank lines are ignored entirely
    ];
    let telemetry = Telemetry::from_lines(&lines);
    assert_eq!(telemetry.spans.len(), 1);
    assert_eq!(telemetry.bursts.len(), 0);
    assert_eq!(telemetry.skipped, 2);

    let report = analyze(&telemetry, &AnalyzerConfig::default());
    assert_eq!(report.units, 2);
    assert_eq!(report.degraded_units, 2, "degraded clamps to units");
    assert_eq!(report.degraded_fraction(), 1.0);
}

/// The thresholds embedded in RESILIENCE.json actually trip.
#[test]
fn thresholds_gate_each_measure_independently() {
    let lines = vec![
        burst("start", 0),
        span(50_000, 1, 10, 5),
        burst("end", 100_000),
        span(400_000, 2, 10, 1), // 300 ms tail
    ];
    let report = analyze(&Telemetry::from_lines(&lines), &AnalyzerConfig::default());

    let pass = ResilienceThresholds {
        max_degraded_fraction: 0.5,
        max_recovery_us: 400_000,
        max_aud_seconds: 1.0,
    };
    assert!(pass.violations(&report).is_empty());

    let strict_fraction = ResilienceThresholds {
        max_degraded_fraction: 0.1,
        ..pass
    };
    assert_eq!(strict_fraction.violations(&report).len(), 1);

    let strict_recovery = ResilienceThresholds {
        max_recovery_us: 100_000,
        ..pass
    };
    assert_eq!(strict_recovery.violations(&report).len(), 1);

    let strict_aud = ResilienceThresholds {
        max_aud_seconds: 0.01,
        ..pass
    };
    assert_eq!(strict_aud.violations(&report).len(), 1);
}

fn span_at(stage: &str, t_us: u64, id: u64, units: u64, degraded: u64) -> String {
    format!(
        r#"{{"schema":"fepia.event/v1","event":"trace.span","trace":"{:016x}","stage":"{stage}","seq":3,"id":{id},"t_us":{t_us},"us":4.5,"shard":0,"units":{units},"degraded":{degraded}}}"#,
        0xdef0_0000_0000_0000u64 | id
    )
}

/// Brownout and deadline-drop spans are evaluation-position samples: they
/// count toward the degraded fraction and windows exactly like degraded
/// `worker.exec` verdicts, while non-evaluation stages never do.
#[test]
fn brownout_and_deadline_spans_count_as_degradation_samples() {
    // w0 [0, 100k):   10 clean full-precision units
    // w1 [100k, 200k): 10 units answered under brownout, 4 degraded
    // w2 [200k, 300k): 6 units dropped with expired deadlines (all degraded)
    let lines = vec![
        span_at("worker.exec", 0, 1, 10, 0),
        span_at("serve.brownout", 100_000, 2, 10, 4),
        span_at("serve.deadline", 200_000, 3, 6, 6),
        // Present in real streams but not an evaluation position: ignored.
        span_at("serve.shed", 210_000, 4, 99, 99),
        span_at("client.retry", 220_000, 5, 99, 99),
    ];
    let report = analyze(&Telemetry::from_lines(&lines), &AnalyzerConfig::default());
    assert_eq!(report.requests, 3, "only evaluation-position spans sample");
    assert_eq!(report.units, 26);
    assert_eq!(report.degraded_units, 10);
    assert_eq!(report.degraded_fraction(), 10.0 / 26.0);
    let fractions: Vec<f64> = report.windows.iter().map(|w| w.fraction()).collect();
    assert_eq!(fractions, vec![0.0, 0.4, 1.0]);
}

/// A deadline-expired tail after a burst extends recovery time just like
/// a degraded verdict tail: the service has not recovered while it is
/// still dropping expired work.
#[test]
fn deadline_drops_after_a_burst_extend_recovery() {
    let lines = vec![
        burst("start", 0),
        span_at("serve.brownout", 50_000, 1, 8, 8),
        burst("end", 100_000),
        span_at("serve.deadline", 180_000, 2, 3, 3), // 80 ms tail
        span_at("worker.exec", 250_000, 3, 8, 0),    // clean again
    ];
    let report = analyze(&Telemetry::from_lines(&lines), &AnalyzerConfig::default());
    assert_eq!(report.bursts, 1);
    assert_eq!(
        report.recovery_us, 80_000,
        "expired-deadline drops keep the burst un-recovered"
    );
}
