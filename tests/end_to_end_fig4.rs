//! End-to-end Fig. 4 / Table 2 (§4.3): scaled-down runs of the HiPer-D
//! experiment pipeline, asserting the paper's qualitative claims.

use fepia_bench::fig4data::{best_table2_pair, robustness_slack_correlation, run, Fig4Config};

fn sweep(seed: u64, mappings: usize) -> fepia_bench::fig4data::Fig4Data {
    run(&Fig4Config {
        mappings,
        ..Fig4Config::paper(seed)
    })
}

#[test]
fn robustness_and_slack_are_generally_correlated() {
    // "While mappings with a larger slack are more robust in general…"
    for seed in [11u64, 12] {
        let d = sweep(seed, 200);
        let r = robustness_slack_correlation(&d).expect("enough feasible mappings");
        assert!(r > 0.4, "seed {seed}: correlation only {r}");
    }
}

#[test]
fn near_equal_slack_pairs_with_large_robustness_ratio_exist() {
    // Table 2's point: "Although the slack values are approximately the
    // same, the robustness of B is about 3.3 times that of A." At 1/5th the
    // paper's sample size we still demand a ≥ 1.5× pair; at full scale the
    // fig4/table2 binaries report ≥ 2×.
    let d = sweep(13, 200);
    let pair = best_table2_pair(&d, 0.01).expect("a near-equal-slack pair exists");
    assert!(
        pair.ratio >= 1.5,
        "best ratio only {} at slack gap {}",
        pair.ratio,
        pair.slack_gap
    );
}

#[test]
fn lambda_star_moves_only_along_binding_sensors() {
    // Table 2 shows λ* differing from λ_orig only in the sensors the
    // binding constraint depends on (e.g. A: only λ₃ moves; B: only λ₂).
    // Generally: λ*'s movement must be confined to sensors with nonzero
    // gradient in the binding constraint, i.e. λ*_z = λ_orig_z wherever the
    // binding constraint ignores sensor z.
    let d = sweep(14, 60);
    let sys = &d.system;
    let mut checked = 0;
    for p in d.points.iter().filter(|p| p.slack > 0.0) {
        let Some(star) = &p.lambda_star else { continue };
        // Reconstruct the binding constraint's sensor support.
        let support: Vec<bool> = if let Some(app) = p
            .binding
            .strip_prefix("throughput a_")
            .and_then(|s| s.parse::<usize>().ok())
        {
            let j = p.mapping.machine_of(app);
            sys.comp[app][j].coeffs.iter().map(|&b| b > 0.0).collect()
        } else {
            continue; // latency constraints mix many apps; skip here
        };
        for z in 0..sys.n_sensors() {
            if !support[z] {
                assert!(
                    (star[z] - sys.lambda_orig[z]).abs() < 1e-6,
                    "λ*_{z} moved although the binding constraint ignores sensor {z}"
                );
            } else {
                assert!(
                    star[z] >= sys.lambda_orig[z] - 1e-6,
                    "boundary crossing decreased a load on a supported sensor"
                );
            }
        }
        checked += 1;
    }
    assert!(checked > 0, "no throughput-bound mappings to check");
}

#[test]
fn floored_metric_is_integral_and_below_raw() {
    let d = sweep(15, 100);
    for p in &d.points {
        assert!(p.floored <= p.robustness);
        if p.floored.is_finite() {
            assert_eq!(p.floored, p.floored.floor(), "floored metric not integral");
            assert!(p.robustness - p.floored < 1.0 + 1e-9);
        }
    }
}

#[test]
fn both_constraint_families_can_bind() {
    // The calibrated generator keeps throughput and latency competitive, so
    // a sweep must see both families bind (as the paper's Table 2 pair
    // does: one mapping throughput-bound, the other latency-bound).
    let d = sweep(16, 200);
    let throughput = d
        .points
        .iter()
        .filter(|p| p.binding.starts_with("throughput"))
        .count();
    let latency = d
        .points
        .iter()
        .filter(|p| p.binding.starts_with("latency"))
        .count();
    assert!(
        throughput > 0 && latency > 0,
        "binding mix degenerate: {throughput} throughput / {latency} latency"
    );
}
