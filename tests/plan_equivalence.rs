//! Property tests for the compiled-plan layer (PR 2 acceptance):
//!
//! * [`fepia::core::AnalysisPlan`] radii match the legacy per-feature
//!   `robustness_radius` path within 1e-12 on random mixed
//!   affine + numeric systems (the affine slots are in fact bitwise);
//! * [`fepia::mapping::DeltaEval`] stays **bitwise** identical to a full
//!   `makespan_robustness` recomputation after an arbitrary move sequence.

use fepia::core::{
    robustness_radius, FeatureSpec, FepiaAnalysis, FnImpact, LinearImpact, Perturbation,
    RadiusOptions, Tolerance,
};
use fepia::etc::{generate_cvb, EtcParams};
use fepia::mapping::{makespan_robustness, DeltaEval, Mapping};
use fepia::optim::VecN;
use fepia::stats::rng_for;
use proptest::prelude::*;
use rand::Rng;

/// A random mixed system: `n_affine` random affine features plus one
/// quadratic numeric feature, all over a random origin of dimension `dim`.
struct RandomSystem {
    origin: VecN,
    affine: Vec<(FeatureSpec, LinearImpact)>,
    numeric_spec: FeatureSpec,
    numeric_scale: f64,
}

fn random_system(seed: u64) -> RandomSystem {
    let mut rng = rng_for(seed, 0);
    let dim = rng.gen_range(2..6usize);
    let n_affine = rng.gen_range(1..6usize);
    let origin = VecN::from(
        (0..dim)
            .map(|_| rng.gen_range(-2.0..2.0f64))
            .collect::<Vec<f64>>(),
    );
    let affine = (0..n_affine)
        .map(|k| {
            let coeffs: Vec<f64> = (0..dim).map(|_| rng.gen_range(-3.0..3.0f64)).collect();
            let constant = rng.gen_range(-1.0..1.0f64);
            // Mix of comfortable, tight and already-violated tolerances.
            let beta = rng.gen_range(-2.0..8.0f64);
            (
                FeatureSpec::new(format!("affine_{k}"), Tolerance::upper(beta)),
                LinearImpact::new(VecN::from(coeffs), constant),
            )
        })
        .collect();
    let numeric_scale = rng.gen_range(0.5..2.0f64);
    let numeric_spec = FeatureSpec::new("numeric", Tolerance::upper(rng.gen_range(5.0..30.0f64)));
    RandomSystem {
        origin,
        affine,
        numeric_spec,
        numeric_scale,
    }
}

fn numeric_impact(sys: &RandomSystem) -> FnImpact {
    let scale = sys.numeric_scale;
    FnImpact::new(move |v: &VecN| scale * v.dot(v)).with_dim(sys.origin.dim())
}

proptest! {
    /// Plan radii == legacy per-feature `robustness_radius` radii, within
    /// 1e-12 (affine slots bitwise, numeric slots shared-code identical).
    #[test]
    fn plan_matches_legacy_per_feature_path(seed in 0u64..200) {
        let sys = random_system(seed);
        let opts = RadiusOptions::default();
        let pert = Perturbation::continuous("pi", sys.origin.clone());

        let mut analysis = FepiaAnalysis::new(pert.clone());
        for (spec, impact) in &sys.affine {
            analysis.add_feature(spec.clone(), impact.clone());
        }
        analysis.add_feature(sys.numeric_spec.clone(), numeric_impact(&sys));
        let plan = analysis.compile(&opts).expect("compiles");
        let evaluation = plan.evaluate(&sys.origin).expect("evaluates");

        let mut legacy = Vec::new();
        for (spec, impact) in &sys.affine {
            legacy.push(robustness_radius(spec, impact, &pert, &opts).expect("radius").radius);
        }
        legacy.push(
            robustness_radius(&sys.numeric_spec, &numeric_impact(&sys), &pert, &opts)
                .expect("radius")
                .radius,
        );

        prop_assert_eq!(evaluation.radii.len(), legacy.len());
        for (k, (&plan_r, &legacy_r)) in evaluation.radii.iter().zip(legacy.iter()).enumerate() {
            if plan_r.is_finite() || legacy_r.is_finite() {
                prop_assert!(
                    (plan_r - legacy_r).abs() <= 1e-12,
                    "seed {}: feature {} plan {} vs legacy {}", seed, k, plan_r, legacy_r
                );
            } else {
                prop_assert_eq!(plan_r, legacy_r);
            }
        }
        let legacy_metric = legacy.iter().cloned().fold(f64::INFINITY, f64::min);
        if evaluation.metric.is_finite() || legacy_metric.is_finite() {
            prop_assert!((evaluation.metric - legacy_metric).abs() <= 1e-12);
        }
    }

    /// After any random move sequence, `DeltaEval` agrees **bitwise** with
    /// a from-scratch `makespan_robustness` at every step: makespan,
    /// every per-machine radius, the metric, and the binding machine.
    #[test]
    fn delta_eval_matches_full_recompute_bitwise(seed in 0u64..150) {
        let mut rng = rng_for(seed, 1);
        let apps = rng.gen_range(5..20usize);
        let machines = rng.gen_range(2..6usize);
        let tau = 1.0 + rng.gen_range(0.0..1.0f64);
        let etc = generate_cvb(
            &mut rng_for(seed, 2),
            &EtcParams { apps, machines, ..EtcParams::paper_section_4_2() },
        );
        let start = Mapping::random(&mut rng_for(seed, 3), apps, machines);

        let mut delta = DeltaEval::new(&etc, &start, tau);
        let mut mapping = start;
        for step in 0..30 {
            let app = rng.gen_range(0..apps);
            let dst = rng.gen_range(0..machines);
            delta.apply(app, dst);
            mapping.reassign(app, dst);

            let full = makespan_robustness(&mapping, &etc, tau).expect("valid instance");
            prop_assert_eq!(
                delta.makespan().to_bits(), full.makespan.to_bits(),
                "seed {} step {}: makespan bits diverged", seed, step
            );
            prop_assert_eq!(
                delta.metric().to_bits(), full.metric.to_bits(),
                "seed {} step {}: metric bits diverged", seed, step
            );
            prop_assert_eq!(delta.binding_machine(), full.binding_machine);
            for (j, (&dr, &fr)) in delta.radii().iter().zip(full.radii.iter()).enumerate() {
                prop_assert_eq!(
                    dr.to_bits(), fr.to_bits(),
                    "seed {} step {} machine {}: radius bits diverged", seed, step, j
                );
            }
        }
    }
}
