//! Property suite for the degradation-curve engine (curve satellites).
//!
//! Three families, all on randomized CVB scenarios:
//!
//! * **Monotonicity** — with upper-bound tolerances `τ·makespan`, no
//!   machine is violated at the origin (the makespan *is* the max finish
//!   time), so every per-feature radius grows with τ and ρ(τ) is
//!   non-decreasing on any ascending grid — equivalently, monotone
//!   non-increasing toward tighter tolerance. Checked pointwise on the
//!   exact affine values, not just via the engine's certified flag.
//! * **Warm-start equivalence** — a full sweep sharing one plan and one
//!   workspace across levels must equal, bit for bit, cold per-level
//!   solves that each recompile the scenario at that τ with a fresh
//!   workspace (the affine path is exact, so "within 1e-12" collapses
//!   to bitwise).
//! * **Degenerate grid** — a curve of length 1 at the scenario's own τ
//!   is the existing `Verdict` path wearing a different request kind:
//!   the served point must be bitwise identical to the `Verdict`
//!   response, and the metadata must collapse to `[τ]`, monotone.

use fepia::core::{EvalBudget, PlanVerdict, ResiliencePolicy, VerdictKind};
use fepia::serve::workload::{scenario_pool, verdicts_bitwise_equal, WorkloadSpec};
use fepia::serve::{CurveGrid, CurveSpec, EvalKind, EvalRequest, Scenario, Service, ServiceConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn random_scenario(seed: u64, apps: usize, machines: usize) -> Arc<Scenario> {
    scenario_pool(&WorkloadSpec {
        seed,
        scenarios: 1,
        apps,
        machines,
        ..WorkloadSpec::default()
    })
    .remove(0)
}

/// Strictly ascending τ grid from raw random draws: sort, dedup by bit
/// pattern, and make sure at least one level survives.
fn ascending_grid(mut raw: Vec<f64>) -> Vec<f64> {
    raw.sort_by(|a, b| a.partial_cmp(b).unwrap());
    raw.dedup_by(|a, b| a.to_bits() == b.to_bits());
    raw
}

/// Cold oracle: recompile the scenario at each τ, fresh workspace per
/// level, one verdict each.
fn cold_per_level(scenario: &Arc<Scenario>, levels: &[f64]) -> Vec<PlanVerdict> {
    let policy = ResiliencePolicy::default();
    levels
        .iter()
        .map(|&tau| {
            let solo = Arc::new(
                Scenario::new(
                    Arc::clone(scenario.etc()),
                    scenario.mapping().clone(),
                    tau,
                    scenario.opts().clone(),
                )
                .expect("grid levels are valid taus"),
            );
            let compiled = solo.compile().expect("cold oracle compiles");
            let mut ws = compiled.plan().workspace();
            compiled.verdict_at_origin(&mut ws, &policy)
        })
        .collect()
}

proptest! {
    /// ρ(τ) is monotone non-increasing toward tighter tolerance on random
    /// ETC/mapping scenarios: ascending grids yield non-decreasing exact
    /// values and the engine certifies monotonicity.
    #[test]
    fn rho_is_monotone_on_random_scenarios(
        seed in 0u64..500,
        apps in 2usize..12,
        machines in 2usize..5,
        raw in prop::collection::vec(1.0..4.0f64, 2..10),
    ) {
        let levels = ascending_grid(raw);
        let scenario = random_scenario(seed, apps, machines);
        let compiled = scenario.compile().unwrap();
        let mut ws = compiled.plan().workspace();
        let (points, meta) = compiled.curve_verdicts(
            &CurveSpec { grid: CurveGrid::Explicit(levels.clone()) },
            &mut ws,
            &ResiliencePolicy::default(),
            EvalBudget::UNLIMITED,
        );
        prop_assert_eq!(points.len(), levels.len());
        prop_assert!(meta.monotone);
        for (k, w) in points.windows(2).enumerate() {
            prop_assert_eq!(w[0].kind, VerdictKind::Exact);
            prop_assert_eq!(w[1].kind, VerdictKind::Exact);
            prop_assert!(
                w[1].metric_lo >= w[0].metric_lo,
                "seed {}: ρ({}) = {} < ρ({}) = {}",
                seed, levels[k + 1], w[1].metric_lo, levels[k], w[0].metric_lo
            );
        }
    }

    /// Warm-started sweeps (one plan, one workspace, level-to-level) are
    /// bitwise equal to cold per-level solves that recompile everything —
    /// sharing scratch can never change a number.
    #[test]
    fn warm_sweep_bitwise_equals_cold_per_level_solves(
        seed in 0u64..200,
        apps in 2usize..10,
        machines in 2usize..4,
        raw in prop::collection::vec(1.0..3.5f64, 1..8),
    ) {
        let levels = ascending_grid(raw);
        let scenario = random_scenario(seed, apps, machines);
        let compiled = scenario.compile().unwrap();
        let mut warm_ws = compiled.plan().workspace();
        let (warm, meta) = compiled.curve_verdicts(
            &CurveSpec { grid: CurveGrid::Explicit(levels.clone()) },
            &mut warm_ws,
            &ResiliencePolicy::default(),
            EvalBudget::UNLIMITED,
        );
        let cold = cold_per_level(&scenario, &levels);
        prop_assert!(
            verdicts_bitwise_equal(&warm, &cold),
            "seed {}: warm sweep drifted from cold per-level solves", seed
        );
        for (served, requested) in meta.taus.iter().zip(&levels) {
            prop_assert_eq!(served.to_bits(), requested.to_bits());
        }
    }
}

/// A one-point curve at the scenario's own τ is the `Verdict` path: the
/// service must return the identical verdict bits under either kind.
#[test]
fn singleton_curve_bitwise_identical_to_verdict_path() {
    let spec = WorkloadSpec {
        seed: 7_001,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let service = Service::start(ServiceConfig {
        shards: 2,
        workers_per_shard: 1,
        ..ServiceConfig::default()
    });

    for (s, scenario) in pool.iter().enumerate() {
        let tau = scenario.tau();
        let verdict = service
            .call_blocking(EvalRequest {
                id: s as u64,
                scenario: Arc::clone(scenario),
                kind: EvalKind::Verdict,
            })
            .expect("verdict accepted");
        let curve = service
            .call_blocking(EvalRequest {
                id: s as u64,
                scenario: Arc::clone(scenario),
                kind: EvalKind::Curve(CurveSpec {
                    grid: CurveGrid::Explicit(vec![tau]),
                }),
            })
            .expect("singleton curve accepted");

        assert_eq!(curve.verdicts.len(), 1, "scenario {s}");
        assert!(
            verdicts_bitwise_equal(&curve.verdicts, &verdict.verdicts),
            "scenario {s}: singleton curve differs bitwise from Verdict path"
        );
        let meta = curve.curve.as_ref().expect("curve meta present");
        assert_eq!(meta.taus.len(), 1);
        assert_eq!(meta.taus[0].to_bits(), tau.to_bits(), "scenario {s}");
        assert!(meta.monotone, "a single point is vacuously monotone");
        assert!(
            verdict.curve.is_none(),
            "Verdict responses must not carry curve metadata"
        );
    }
    service.shutdown();
}
