//! Overload brownout storm soak (PR 8 acceptance).
//!
//! The contract under overload is *degrade answer precision, not
//! availability*: every admitted request is answered with a typed
//! disposition (`Full` / `Brownout` / `DeadlineExceeded`) or refused with
//! a typed `Overloaded` frame; no worker ever burns time evaluating a
//! request whose deadline already expired in the queue; brownout answers
//! stay sound (their metric interval contains the chaos-off full-precision
//! metric) and bitwise-reproducible across same-seed runs.
//!
//! Also here: the v2-vs-v3 wire-version negotiation regression (a typed
//! error frame, never a panic or hang) and the stalled-server client
//! timeout regression (accept-then-silent listeners used to hang
//! `NetClient::call` forever).

use fepia::net::frame::{read_frame, write_frame, Frame, FrameType, HEADER_LEN};
use fepia::net::wire::{
    decode_error, decode_response, encode_request, encode_request_with_deadline, WireError,
};
use fepia::net::{ClientConfig, NetClient, NetError, NetServer, ServerConfig};
use fepia::serve::workload::{request, scenario_pool, WorkloadSpec};
use fepia::serve::{Disposition, EvalKind, EvalRequest, Service, ServiceConfig};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

static NET_LOCK: Mutex<()> = Mutex::new(());

fn net_guard() -> std::sync::MutexGuard<'static, ()> {
    let guard = NET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fepia::chaos::clear();
    guard
}

/// A request heavy enough to pin a worker for tens of milliseconds: a
/// large `Moves` batch against the pooled scenario (each move is an
/// incremental `DeltaEval`, so the total is predictable and panic-free).
fn pin_request(pool: &[Arc<fepia::serve::Scenario>], id: u64) -> EvalRequest {
    let scenario = Arc::clone(&pool[0]);
    let apps = scenario.mapping().apps();
    let machines = scenario.mapping().machines();
    let moves: Vec<(usize, usize)> = (0..400_000)
        .map(|k| (k % apps, (k / 7) % machines))
        .collect();
    EvalRequest {
        id,
        scenario,
        kind: EvalKind::Moves(moves),
    }
}

/// One raw protocol conversation: write request frames by hand, read
/// response frames by hand. Lets the test control exactly what deadline
/// travels on the wire without the client's own deadline enforcement.
fn raw_conn(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s
}

/// The storm: a pinned worker, then an 8× burst of deadline-carrying
/// requests that must all expire in the queue and come back as typed
/// `DeadlineExceeded` dispositions with **zero evaluation work** — no
/// verdicts, no attempts, and the shard's `deadline_expired` counter
/// matching exactly.
#[test]
fn storm_expired_requests_are_dropped_at_dequeue_never_evaluated() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 8_001,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let service = Arc::new(Service::start(ServiceConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_capacity: 64,
        ..ServiceConfig::default()
    }));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("start server");
    let addr = server.local_addr();

    // Pin the single worker on its own connection.
    let mut pin = raw_conn(addr);
    let pin_req = pin_request(&pool, 900_000);
    write_frame(&mut pin, FrameType::Request, 0, &encode_request(&pin_req)).unwrap();
    // Wait until the service has admitted the pin, so the burst queues
    // strictly behind it.
    {
        let mut stats = NetClient::connect(addr, ClientConfig::default()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let totals = stats.stats(1).expect("stats poll").service_totals();
            if totals.submitted >= 1 {
                break;
            }
            assert!(Instant::now() < deadline, "pin request never admitted");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // The burst: 8 requests (8× the single-worker capacity), each with a
    // 1 ms relative deadline. All queue behind the pin, so by dequeue the
    // deadline has long expired.
    const BURST: u64 = 8;
    let mut storm = raw_conn(addr);
    for i in 0..BURST {
        let req = request(&spec, &pool, i);
        write_frame(
            &mut storm,
            FrameType::Request,
            0,
            &encode_request_with_deadline(&req, 1_000),
        )
        .unwrap();
    }

    // Every burst response must be typed DeadlineExceeded with zero
    // evaluation evidence (order may vary; responses are id-matched).
    let mut seen = std::collections::HashSet::new();
    for _ in 0..BURST {
        let frame = read_frame(&mut storm).expect("typed response, not a hang");
        assert_eq!(frame.frame_type, FrameType::Response);
        let resp = decode_response(&frame.payload).unwrap();
        assert!(seen.insert(resp.id), "duplicate response id {}", resp.id);
        assert_eq!(
            resp.disposition,
            Disposition::DeadlineExceeded,
            "request {} should have expired in the queue",
            resp.id
        );
        assert!(
            resp.verdicts.is_empty(),
            "expired request {} was evaluated anyway",
            resp.id
        );
        assert_eq!(
            resp.attempts, 0,
            "expired request {} burned a worker attempt",
            resp.id
        );
    }

    // The pin itself completes at full precision.
    let frame = read_frame(&mut pin).expect("pin response");
    let pin_resp = decode_response(&frame.payload).unwrap();
    assert_eq!(pin_resp.id, 900_000);
    assert_eq!(pin_resp.disposition, Disposition::Full);
    assert_eq!(pin_resp.verdicts.len(), 400_000);

    drop(pin);
    drop(storm);
    server.shutdown();
    let totals = Arc::try_unwrap(service)
        .ok()
        .expect("sole owner after shutdown")
        .shutdown()
        .totals();
    assert_eq!(totals.deadline_expired, BURST);
    // Recovery: nothing left in flight, every submission accounted for.
    assert_eq!(totals.completed, totals.submitted);
}

/// Admission-control brownout: with the brownout threshold at zero every
/// admitted request is answered at budgeted precision, marked
/// `Brownout`, its metric interval containing the full-precision answer
/// — and two same-seed runs produce bitwise-identical responses.
#[test]
fn admission_brownout_is_sound_marked_and_reproducible() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 8_002,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    const N: u64 = 24;

    // Full-precision reference, computed in-process with no brownout.
    let reference = Service::start(ServiceConfig::default());
    let full: Vec<_> = (0..N)
        .map(|i| reference.call_blocking(request(&spec, &pool, i)).unwrap())
        .collect();
    reference.shutdown();

    let run = || -> (Vec<Vec<u8>>, u64) {
        let service = Arc::new(Service::start(ServiceConfig {
            shards: 1,
            workers_per_shard: 1,
            ..ServiceConfig::default()
        }));
        let server = NetServer::start(
            Arc::clone(&service),
            "127.0.0.1:0",
            ServerConfig {
                brownout_in_flight: 0, // every admission browns out
                ..ServerConfig::default()
            },
        )
        .expect("start server");
        let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
        let mut encoded = Vec::new();
        for i in 0..N {
            let resp = client
                .call(&request(&spec, &pool, i))
                .expect("brownout answers");
            assert_eq!(resp.id, i);
            assert_eq!(resp.disposition, Disposition::Brownout);
            // Soundness: the (possibly widened) brownout interval must
            // contain the full-precision metric interval.
            let f = &full[i as usize];
            assert_eq!(resp.verdicts.len(), f.verdicts.len());
            for (b, f) in resp.verdicts.iter().zip(&f.verdicts) {
                assert!(
                    b.metric_lo <= f.metric_lo && f.metric_hi <= b.metric_hi,
                    "brownout interval [{}, {}] excludes full-precision [{}, {}]",
                    b.metric_lo,
                    b.metric_hi,
                    f.metric_lo,
                    f.metric_hi
                );
            }
            encoded.push(fepia::net::encode_response(&resp));
        }
        let net = server.shutdown();
        assert_eq!(net.admission_brownout, N);
        assert_eq!(net.admission_shed, 0);
        let totals = Arc::try_unwrap(service)
            .ok()
            .expect("sole owner")
            .shutdown()
            .totals();
        (encoded, totals.brownout_evals)
    };

    let (a, brownouts_a) = run();
    let (b, brownouts_b) = run();
    assert_eq!(brownouts_a, N);
    assert_eq!(brownouts_b, N);
    // Bitwise reproducibility: the canonical encoding is byte-equal
    // across runs, so every f64 bit pattern and tag matches.
    assert_eq!(a, b, "same-seed brownout runs must be bitwise identical");
}

/// Admission-control shed: with a pinned worker and the shed threshold at
/// 4, a burst of 8 yields exactly 4 admissions and 4 typed `Overloaded`
/// refusals — availability degrades last, and typed.
#[test]
fn admission_shed_is_typed_and_counts() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 8_003,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let service = Arc::new(Service::start(ServiceConfig {
        shards: 1,
        workers_per_shard: 1,
        queue_capacity: 64,
        ..ServiceConfig::default()
    }));
    let server = NetServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            brownout_in_flight: 2,
            shed_in_flight: 4,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    // Pin the worker, then wait for its admission.
    let mut pin = raw_conn(addr);
    write_frame(
        &mut pin,
        FrameType::Request,
        0,
        &encode_request(&pin_request(&pool, 900_001)),
    )
    .unwrap();
    {
        let mut stats = NetClient::connect(addr, ClientConfig::default()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while stats.stats(1).expect("stats").service_totals().submitted < 1 {
            assert!(Instant::now() < deadline, "pin never admitted");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Burst of 8 on one connection: in-flight climbs 1→4 (pin + 3
    // admitted, the 4th admission hits the threshold), the rest shed.
    let mut storm = raw_conn(addr);
    for i in 0..8u64 {
        let req = request(&spec, &pool, i);
        write_frame(&mut storm, FrameType::Request, 0, &encode_request(&req)).unwrap();
    }
    let mut full = 0u64;
    let mut brownout = 0u64;
    let mut shed = 0u64;
    for _ in 0..8 {
        let frame = read_frame(&mut storm).expect("typed outcome for every request");
        match frame.frame_type {
            FrameType::Response => match decode_response(&frame.payload).unwrap().disposition {
                Disposition::Full => full += 1,
                Disposition::Brownout => brownout += 1,
                Disposition::DeadlineExceeded => panic!("no deadline was set"),
            },
            FrameType::Error => {
                let (_, err) = decode_error(&frame.payload).unwrap();
                assert!(matches!(err, WireError::Overloaded { .. }), "{err:?}");
                shed += 1;
            }
            other => panic!("unexpected frame type {other:?}"),
        }
    }
    // The pin occupies one in-flight slot. The first burst request is
    // admitted at in-flight 1 (< brownout threshold 2) at full precision;
    // the next two are admitted brownout-hinted at in-flight 2 and 3; the
    // count then sits at the shed threshold of 4, refusing the rest.
    assert_eq!(
        (full, brownout, shed),
        (1, 2, 5),
        "precision degrades first, availability last"
    );
    let frame = read_frame(&mut pin).expect("pin response");
    assert_eq!(
        decode_response(&frame.payload).unwrap().disposition,
        Disposition::Full,
        "the pin was admitted before any brownout pressure"
    );
    drop(pin);
    drop(storm);
    let net = server.shutdown();
    assert_eq!(net.admission_shed, 5);
    assert_eq!(net.admission_brownout, 2);
    drop(service);
}

/// Wire-version negotiation (satellite): a v2 frame against the v3 server
/// is answered with a typed error frame naming the version — never a
/// decode panic, a mis-parse, or a hang.
#[test]
fn v2_frame_yields_typed_version_error_not_a_hang() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 8_004,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let service = Arc::new(Service::start(Default::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("start server");

    let mut conn = raw_conn(server.local_addr());
    // A well-formed v3 frame rewritten to claim version 2: the version
    // byte is outside the checksum, so this is exactly what a stale v2
    // client would send.
    let mut bytes = Frame::new(
        FrameType::Request,
        encode_request(&request(&spec, &pool, 0)),
    )
    .encode();
    assert_eq!(bytes[4], 3, "this build speaks wire v3");
    bytes[4] = 2;
    use std::io::Write as _;
    conn.write_all(&bytes).unwrap();
    conn.flush().unwrap();

    let frame = read_frame(&mut conn).expect("typed error frame, not a hang");
    assert_eq!(frame.frame_type, FrameType::Error);
    let (id, err) = decode_error(&frame.payload).unwrap();
    assert_eq!(id, 0, "version errors cannot echo an id they never decoded");
    match err {
        WireError::Invalid(msg) => assert!(
            msg.contains("unsupported protocol version 2"),
            "error must name the offending version: {msg}"
        ),
        other => panic!("expected Invalid, got {other:?}"),
    }
    // The server closed the stream after the protocol error; the next
    // read is EOF, not a hang.
    assert!(read_frame(&mut conn).is_err());
    server.shutdown();
    drop(service);
}

/// Client io-timeout regression (satellite): a server that accepts and
/// then goes silent must surface as a timed-out typed error on the
/// reconnect path, not block `call` forever.
#[test]
fn stalled_server_times_out_instead_of_hanging() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 8_005,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);

    // Accept-then-silent listener: holds every socket open, never writes.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
    let hold_in = Arc::clone(&hold);
    let accepter = std::thread::spawn(move || {
        while let Ok((sock, _)) = listener.accept() {
            let mut held = hold_in.lock().unwrap();
            held.push(sock);
            if held.len() >= 8 {
                return;
            }
        }
    });

    let mut client = NetClient::connect(
        addr,
        ClientConfig {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            io_timeout: Duration::from_millis(100),
        },
    )
    .expect("connect succeeds; only reads stall");

    let started = Instant::now();
    let err = client
        .call(&request(&spec, &pool, 0))
        .expect_err("a silent server cannot answer");
    let elapsed = started.elapsed();
    match err {
        NetError::RetriesExhausted { attempts, last } => {
            assert_eq!(attempts, 2);
            assert!(
                matches!(*last, NetError::Io(ref e) if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut),
                "terminal cause should be a read timeout, got {last}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "two 100 ms timeouts must not take {elapsed:?}"
    );

    // The deadline path fails even tighter, with the typed deadline error.
    let started = Instant::now();
    let err = client
        .call_with_deadline(&request(&spec, &pool, 1), Duration::from_millis(150))
        .expect_err("deadline expires against a silent server");
    assert!(
        matches!(err, NetError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err}"
    );
    assert!(started.elapsed() < Duration::from_secs(10));

    drop(client);
    // Unblock the accepter with dummy connections so the thread exits.
    while !accepter.is_finished() {
        let _ = TcpStream::connect(addr);
    }
    accepter.join().unwrap();
}

/// End-to-end deadline happy path over TCP: a healthy server inside the
/// budget answers `Full`, bitwise-equal to the in-process evaluation.
#[test]
fn deadline_call_on_healthy_server_is_full_precision() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 8_006,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let service = Arc::new(Service::start(Default::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("start server");
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    let req = request(&spec, &pool, 7);
    let over_tcp = client
        .call_with_deadline(&req, Duration::from_secs(30))
        .expect("well within budget");
    assert_eq!(over_tcp.disposition, Disposition::Full);

    let in_process = service.call_blocking(request(&spec, &pool, 7)).unwrap();
    assert!(
        fepia::serve::workload::verdicts_bitwise_equal(&over_tcp.verdicts, &in_process.verdicts),
        "deadline transport must not perturb the answer"
    );
    server.shutdown();
    drop(service);
}

/// The header-size constant is part of the v3 contract: the version bump
/// changed payloads, not the frame header.
#[test]
fn v3_keeps_the_28_byte_header() {
    assert_eq!(HEADER_LEN, 28);
    assert_eq!(fepia::net::VERSION, 3);
}
