//! Fixed-seed TCP soak for `fepia-net` (PR 5 acceptance).
//!
//! 10k mixed requests from 8 concurrent TCP connections over localhost,
//! run twice with the same seed: the order-independent aggregate digest
//! must be bitwise identical across the two runs *and* equal to the
//! digest of the same workload driven in-process — the wire adds nothing
//! and loses nothing. A run manifest with both digests and the server
//! counters is written to the results directory for CI to archive.
//!
//! Chaos stays off here (the chaos path is covered by
//! `net_equivalence`); the lock + clear guard below just isolates this
//! binary's tests from each other if more are added.

use fepia::net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia::serve::workload::{
    combine_digests, request, response_digest, scenario_pool, WorkloadSpec,
};
use fepia::serve::{Service, ServiceConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

static SOAK_LOCK: Mutex<()> = Mutex::new(());

fn results_dir() -> PathBuf {
    let dir = std::env::var_os("FEPIA_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

const CLIENTS: u64 = 8;
const SOAK_REQUESTS: u64 = 10_000;

fn soak_config() -> ServiceConfig {
    ServiceConfig {
        shards: 4,
        workers_per_shard: 2,
        queue_capacity: 512,
        cache_capacity: 16,
        ..ServiceConfig::default()
    }
}

/// Drives the soak workload through one freshly started server over TCP
/// and returns `(aggregate digest, server frame counters)`.
fn drive_tcp(spec: &WorkloadSpec) -> (u64, fepia::net::NetStatsSnapshot) {
    let pool = scenario_pool(spec);
    let served = Arc::new(Service::start(soak_config()));
    let server =
        NetServer::start(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let digests: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let pool = &pool;
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr, ClientConfig::default())
                        .expect("soak client connects");
                    let mut digest = 0u64;
                    let mut index = t;
                    while index < SOAK_REQUESTS {
                        let req = request(spec, pool, index);
                        let resp = client.call(&req).expect("chaos-off soak call succeeds");
                        assert_eq!(resp.id, index);
                        digest = combine_digests([digest, response_digest(&resp)]);
                        index += CLIENTS;
                    }
                    assert_eq!(client.reconnects(), 0, "chaos-off soak reconnected");
                    digest
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let stats = server.shutdown();
    let service_totals = Arc::try_unwrap(served)
        .ok()
        .expect("server released its service handle")
        .shutdown()
        .totals();
    assert_eq!(service_totals.completed, SOAK_REQUESTS, "dropped responses");
    assert_eq!(
        service_totals.shed_full + service_totals.shed_shutdown,
        0,
        "bounded per-connection windows must keep the queues under capacity"
    );
    (combine_digests(digests), stats)
}

/// The same workload, in-process, from the same number of client threads.
fn drive_in_process(spec: &WorkloadSpec) -> u64 {
    let pool = scenario_pool(spec);
    let service = Service::start(soak_config());
    let digests: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let (pool, service) = (&pool, &service);
                scope.spawn(move || {
                    let mut digest = 0u64;
                    let mut index = t;
                    while index < SOAK_REQUESTS {
                        let resp = service
                            .call_blocking(request(spec, pool, index))
                            .expect("in-process soak accepts");
                        digest = combine_digests([digest, response_digest(&resp)]);
                        index += CLIENTS;
                    }
                    digest
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    service.shutdown();
    combine_digests(digests)
}

#[test]
fn tcp_soak_10k_digest_reproducible_and_equal_in_process() {
    let _guard = SOAK_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fepia::chaos::clear();
    let spec = WorkloadSpec {
        seed: 2_005,
        ..WorkloadSpec::default()
    };

    let (digest_a, stats_a) = drive_tcp(&spec);
    let (digest_b, stats_b) = drive_tcp(&spec);
    let in_process = drive_in_process(&spec);

    for (run, stats) in [("1", &stats_a), ("2", &stats_b)] {
        assert_eq!(stats.connections, CLIENTS, "run {run} connections");
        assert_eq!(stats.frames_read, SOAK_REQUESTS, "run {run} frames read");
        assert_eq!(
            stats.frames_written, SOAK_REQUESTS,
            "run {run} frames written"
        );
        assert_eq!(
            stats.decode_errors + stats.overloaded + stats.invalid + stats.chaos_drops,
            0,
            "run {run} saw error frames in a clean soak"
        );
    }

    let manifest_path = results_dir().join("net_soak_manifest.json");
    fepia_obs::RunManifest::new("net_soak")
        .param("seed", spec.seed)
        .param("requests", SOAK_REQUESTS)
        .param("clients", CLIENTS)
        .param("digest_tcp_run1", format!("{digest_a:016x}"))
        .param("digest_tcp_run2", format!("{digest_b:016x}"))
        .param("digest_in_process", format!("{in_process:016x}"))
        .param("frames_read", stats_a.frames_read)
        .param("frames_written", stats_a.frames_written)
        .output(manifest_path.display().to_string())
        .write_to(&manifest_path)
        .expect("write net soak manifest");

    assert_eq!(
        digest_a, digest_b,
        "same-seed TCP soak digests differ: {digest_a:016x} vs {digest_b:016x}"
    );
    assert_eq!(
        digest_a, in_process,
        "TCP digest {digest_a:016x} differs from in-process {in_process:016x}"
    );
}
