//! End-to-end trace determinism over real TCP (PR 6 acceptance).
//!
//! Three contracts:
//!
//! 1. **Deterministic mode is bitwise-reproducible.** With `FEPIA_TRACE`
//!    in deterministic mode (trace on, wall clock off), a fixed-seed
//!    8-connection soak emits a span stream whose *sorted* lines are
//!    byte-identical across runs: trace ids are minted from request ids,
//!    every span field (stage, seq, shard, units, degraded, attempts) is a
//!    pure function of the request, and the scheduling-dependent fields
//!    (`t_us`, `us`, `cache`) are omitted. Only the interleaving may vary,
//!    which sorting removes.
//! 2. **Disabled tracing emits nothing.** With tracing off, the same soak
//!    produces zero `trace.span` events — the PR 5 event stream is
//!    untouched.
//! 3. **Stats polls work over TCP.** `NetClient::stats` returns live
//!    per-shard service counters and net-layer frame counters consistent
//!    with the traffic just driven.

use fepia::net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia::serve::workload::{request, scenario_pool, WorkloadSpec};
use fepia::serve::Service;
use std::sync::{Arc, Mutex};

/// Serializes the tests: the obs sink and trace toggles are process-wide.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

const CLIENTS: u64 = 8;
const REQUESTS: u64 = 400;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Drives `REQUESTS` fixed-seed requests through a TCP server with
/// `CLIENTS` connections and returns every event line the run emitted.
fn drive_soak(seed: u64) -> Vec<String> {
    let sink = Arc::new(fepia_obs::VecSink::new());
    let prev = fepia_obs::install_sink(sink.clone());
    fepia_obs::set_events_enabled(true);

    let spec = WorkloadSpec {
        seed,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);
    let service = Arc::new(Service::start(Default::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("start TCP server");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let pool = &pool;
            let spec = &spec;
            scope.spawn(move || {
                let mut client =
                    NetClient::connect(addr, ClientConfig::default()).expect("client connects");
                let mut index = t;
                while index < REQUESTS {
                    let resp = client
                        .call(&request(spec, pool, index))
                        .expect("chaos-off soak call succeeds");
                    assert_eq!(resp.id, index);
                    index += CLIENTS;
                }
            });
        }
    });

    server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("server released its service handle")
        .shutdown();

    fepia_obs::set_events_enabled(false);
    if let Some(prev) = prev {
        fepia_obs::install_sink(prev);
    } else {
        fepia_obs::clear_sink();
    }
    sink.lines()
}

fn span_lines(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .filter(|l| l.contains(r#""event":"trace.span""#))
        .cloned()
        .collect()
}

#[test]
fn deterministic_mode_spans_are_bitwise_reproducible() {
    let _guard = lock();
    fepia::chaos::clear();
    fepia_obs::set_trace_enabled(true);
    fepia_obs::set_trace_wall(false);

    let mut first = span_lines(&drive_soak(77));
    let mut second = span_lines(&drive_soak(77));

    fepia_obs::set_trace_enabled(false);

    // Chaos-off: every request emits exactly client.send, net.read,
    // queue.wait, worker.exec, net.write, client.recv — no retries, no
    // sheds.
    assert_eq!(
        first.len() as u64,
        6 * REQUESTS,
        "unexpected span count in run 1"
    );
    first.sort();
    second.sort();
    assert_eq!(
        first, second,
        "sorted deterministic-mode span streams must be byte-identical"
    );

    // Deterministic mode must omit every scheduling-dependent field.
    for line in &first {
        assert!(
            !line.contains(r#""t_us""#) && !line.contains(r#""us""#),
            "wall-clock field leaked into deterministic mode: {line}"
        );
        assert!(
            !line.contains(r#""cache""#),
            "cache outcome leaked into deterministic mode: {line}"
        );
    }
}

#[test]
fn disabled_tracing_emits_no_spans() {
    let _guard = lock();
    fepia::chaos::clear();
    fepia_obs::set_trace_enabled(false);

    let lines = drive_soak(78);
    let spans = span_lines(&lines);
    assert!(
        spans.is_empty(),
        "tracing disabled but {} trace.span events were emitted",
        spans.len()
    );
}

/// Under pipelining every outbound frame needs a unique correlation id:
/// stats polls must mint their header trace id from the same SplitMix64
/// sequence as eval requests ([`fepia_obs::TraceId::mint`]) when tracing
/// is on, and send 0 when it is off.
#[test]
fn stats_polls_mint_trace_ids_from_the_request_id() {
    use fepia::net::frame::{read_frame, write_frame, FrameType};
    use fepia::net::wire::{encode_stats_reply, StatsReply};

    let _guard = lock();
    fepia::chaos::clear();

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = std::thread::spawn(move || {
        let mut traces = Vec::new();
        // Two connections (the client reconnects per-scenario below), one
        // stats poll each.
        for _ in 0..2 {
            let (mut conn, _) = listener.accept().unwrap();
            let frame = read_frame(&mut conn).unwrap();
            assert_eq!(frame.frame_type, FrameType::StatsRequest);
            let id = fepia::net::wire::decode_stats_request(&frame.payload).unwrap();
            traces.push((id, frame.trace));
            let reply = StatsReply {
                id,
                shards: Vec::new(),
                net: Default::default(),
            };
            write_frame(
                &mut conn,
                FrameType::StatsResponse,
                frame.trace,
                &encode_stats_reply(&reply),
            )
            .unwrap();
        }
        traces
    });

    // Poll 1: tracing on — the header must carry TraceId::mint(id).
    fepia_obs::set_trace_enabled(true);
    let mut client =
        NetClient::connect(addr, ClientConfig::default()).expect("client connects (traced)");
    let reply = client.stats(4_242).expect("traced stats poll");
    assert_eq!(reply.id, 4_242);
    drop(client);

    // Poll 2: tracing off — untraced frames carry 0.
    fepia_obs::set_trace_enabled(false);
    let mut client =
        NetClient::connect(addr, ClientConfig::default()).expect("client connects (untraced)");
    let reply = client.stats(4_243).expect("untraced stats poll");
    assert_eq!(reply.id, 4_243);
    drop(client);

    let traces = script.join().unwrap();
    assert_eq!(traces[0].0, 4_242);
    assert_eq!(
        traces[0].1,
        fepia_obs::TraceId::mint(4_242).0,
        "traced stats poll must mint its id from the SplitMix64 sequence"
    );
    assert_ne!(traces[0].1, 0, "minted trace id is never 0");
    assert_eq!(traces[1].0, 4_243);
    assert_eq!(traces[1].1, 0, "tracing off sends an untraced (0) header");
}

#[test]
fn stats_poll_returns_live_counters_over_tcp() {
    let _guard = lock();
    fepia::chaos::clear();
    fepia_obs::set_trace_enabled(false);

    let spec = WorkloadSpec::default();
    let pool = scenario_pool(&spec);
    let service = Arc::new(Service::start(Default::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("start TCP server");
    let mut client =
        NetClient::connect(server.local_addr(), ClientConfig::default()).expect("client connects");

    const N: u64 = 32;
    for i in 0..N {
        let resp = client.call(&request(&spec, &pool, i)).expect("eval call");
        assert_eq!(resp.id, i);
    }

    let reply = client.stats(9_001).expect("stats poll");
    assert_eq!(reply.id, 9_001);
    assert_eq!(reply.shards.len(), 4, "default service has 4 shards");

    let totals = reply.service_totals();
    assert_eq!(totals.submitted, N, "every eval was admitted");
    assert_eq!(totals.completed, N, "every eval was answered");
    assert_eq!(totals.shed_full + totals.shed_shutdown, 0);
    assert_eq!(
        totals.cache_hits + totals.cache_misses + totals.cache_coalesced,
        N,
        "every request took a cache decision"
    );

    // The net layer saw this connection and all N eval frames (the stats
    // request itself is counted too).
    assert_eq!(reply.net.connections, 1);
    assert!(reply.net.frames_read > N);
    assert!(reply.net.frames_written >= N);
    assert_eq!(reply.net.decode_errors, 0);
    assert_eq!(reply.net.overloaded + reply.net.invalid, 0);

    // A second poll observes monotone frame counters.
    let again = client.stats(9_002).expect("second stats poll");
    assert_eq!(again.id, 9_002);
    assert!(again.net.frames_read > reply.net.frames_read);

    server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("server released its service handle")
        .shutdown();
}
