//! TCP ↔ in-process equivalence for `fepia-net` (PR 5 acceptance).
//!
//! The wire layer is a *pure transport*: a response served over TCP must
//! be bitwise identical — every radius, metric bound, cache outcome and
//! attempt count — to what an identically configured in-process
//! [`Service`] returns for the same request stream. Equality is asserted
//! on the canonical encoding (`encode_response` bytes), which compares
//! `f64`s by bit pattern, so NaNs and signed zeros cannot hide drift.
//!
//! Under chaos (`net.read` dropped connections, `net.write` torn frames,
//! `serve.worker` panics, `mapping.delta.load` poisoning — the fixed CI
//! seed), the client's reconnect/retry loop must still deliver *verdicts*
//! bitwise equal to the chaos-off ground truth: faults may cost retries
//! and change transport metadata (attempts, cache outcome), never
//! numbers. Deterministic fake-server tests pin down the client's typed
//! retry classification (Overloaded → backoff, Invalid → permanent, torn
//! frame → reconnect), and a drain test shows shutdown answers accepted
//! work.
//!
//! Chaos state is process-global, so every test holds one lock.

use fepia::net::frame::{read_frame, write_frame, Frame, FrameType};
use fepia::net::wire::{encode_error, encode_response, WireError};
use fepia::net::{ClientConfig, NetClient, NetError, NetServer, ServerConfig};
use fepia::serve::workload::{
    moves_request, request, scenario_pool, verdicts_bitwise_equal, WorkloadSpec,
};
use fepia::serve::{Service, ServiceConfig, ShedReason};
use std::net::TcpListener;
use std::sync::{Arc, Mutex, Once};

static NET_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the tests (chaos is process-wide) with the panic hook
/// silencing intentional injected worker panics, chaos initially off.
fn net_guard() -> std::sync::MutexGuard<'static, ()> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let text = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !text.contains("chaos: injected panic") {
                previous(info);
            }
        }));
    });
    let guard = NET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fepia::chaos::clear();
    guard
}

fn equivalence_config() -> ServiceConfig {
    // One worker per shard and a sequential client keep the cache-event
    // sequence (Compiled/Hit) deterministic, so even the cache outcome
    // field must match bitwise.
    ServiceConfig {
        shards: 2,
        workers_per_shard: 1,
        queue_capacity: 64,
        cache_capacity: 8,
        ..ServiceConfig::default()
    }
}

const REQUESTS: u64 = 200;

#[test]
fn tcp_responses_bitwise_equal_in_process_chaos_off() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 5_001,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);

    // Two identically configured services, fed the same sequential stream:
    // one in-process (the reference), one behind the TCP server.
    let reference = Service::start(equivalence_config());
    let served = Arc::new(Service::start(equivalence_config()));
    let server =
        NetServer::start(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    for index in 0..REQUESTS {
        let req = request(&spec, &pool, index);
        let expected = reference
            .call_blocking(req.clone())
            .expect("reference accepts");
        let over_tcp = client.call(&req).expect("tcp call succeeds chaos-off");
        assert_eq!(
            encode_response(&over_tcp),
            encode_response(&expected),
            "request {index}: TCP response differs from in-process (bitwise)"
        );
    }
    assert_eq!(client.reconnects(), 0, "chaos-off must not reconnect");
    assert_eq!(client.retries(), 0, "chaos-off must not retry");

    let stats = server.shutdown();
    assert_eq!(stats.frames_read, REQUESTS);
    assert_eq!(stats.frames_written, REQUESTS);
    assert_eq!(stats.decode_errors + stats.overloaded + stats.invalid, 0);
    reference.shutdown();
    Arc::try_unwrap(served)
        .ok()
        .expect("server released its service handle")
        .shutdown();
}

const CHAOS_REQUESTS: u64 = 300;

#[test]
fn tcp_verdicts_bitwise_equal_ground_truth_under_chaos() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 5_002,
        scenarios: 6,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);

    // Ground truth with chaos off: the moves-only workload stays Exact.
    let truth: Vec<_> = {
        let service = Service::start(equivalence_config());
        let out = (0..CHAOS_REQUESTS)
            .map(|i| {
                service
                    .call_blocking(moves_request(&spec, &pool, i))
                    .expect("clean run accepts")
            })
            .collect();
        service.shutdown();
        out
    };

    // Same workload under the fixed CI chaos seed: worker panics are
    // retried server-side (16 attempts), dropped connections and torn
    // frames are retried client-side (16 attempts, deterministic backoff).
    fepia::chaos::set_for_test(2_003, 0.2);
    let served = Arc::new(Service::start(ServiceConfig {
        worker_attempts: 16,
        ..equivalence_config()
    }));
    let server =
        NetServer::start(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = NetClient::connect(
        server.local_addr(),
        ClientConfig {
            max_attempts: 16,
            ..ClientConfig::default()
        },
    )
    .unwrap();

    for (index, expected) in truth.iter().enumerate() {
        let req = moves_request(&spec, &pool, index as u64);
        let over_tcp = client
            .call(&req)
            .unwrap_or_else(|e| panic!("request {index} exhausted retries under chaos: {e}"));
        assert_eq!(over_tcp.id, expected.id);
        assert!(
            verdicts_bitwise_equal(&over_tcp.verdicts, &expected.verdicts),
            "request {index}: verdicts under chaos differ bitwise from ground truth"
        );
    }
    let stats = server.shutdown();
    fepia::chaos::clear();
    assert!(
        stats.chaos_drops > 0,
        "20% injection over {CHAOS_REQUESTS} requests must actually fire"
    );
    assert!(
        client.reconnects() > 0,
        "dropped connections/torn frames must force reconnects"
    );
    Arc::try_unwrap(served)
        .ok()
        .expect("server released its service handle")
        .shutdown();
}

/// Deterministic client-side retry classification against a scripted
/// server: an `Overloaded` error frame is retried on the same connection;
/// an `Invalid` error frame is returned immediately, permanently.
#[test]
fn client_backs_off_on_overloaded_and_fails_fast_on_invalid() {
    let _guard = net_guard();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        // First frame → Overloaded (retryable, same connection).
        let f = read_frame(&mut conn).unwrap();
        assert_eq!(f.frame_type, FrameType::Request);
        let overloaded = encode_error(
            7,
            &WireError::Overloaded {
                shard: 1,
                reason: ShedReason::QueueFull,
            },
        );
        write_frame(&mut conn, FrameType::Error, 0, &overloaded).unwrap();
        // The retry arrives on the SAME connection → Invalid (permanent).
        let f = read_frame(&mut conn).unwrap();
        assert_eq!(f.frame_type, FrameType::Request);
        let invalid = encode_error(7, &WireError::Invalid("scripted rejection".into()));
        write_frame(&mut conn, FrameType::Error, 0, &invalid).unwrap();
    });

    let spec = WorkloadSpec::default();
    let pool = scenario_pool(&spec);
    let mut req = request(&spec, &pool, 0);
    req.id = 7;
    let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
    match client.call(&req) {
        Err(NetError::Invalid(msg)) => assert_eq!(msg, "scripted rejection"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    assert_eq!(client.retries(), 1, "exactly one backoff retry");
    assert_eq!(client.reconnects(), 0, "Overloaded keeps the connection");
    script.join().unwrap();
}

/// Deterministic transport recovery: a torn response frame forces a
/// reconnect, and the resent request succeeds on the new connection.
#[test]
fn client_reconnects_through_torn_frame() {
    let _guard = net_guard();
    let spec = WorkloadSpec::default();
    let pool = scenario_pool(&spec);
    let req = request(&spec, &pool, 11);

    // A real response to replay from the scripted server.
    let service = Service::start(equivalence_config());
    let expected = service.call_blocking(req.clone()).unwrap();
    service.shutdown();
    let response_payload = encode_response(&expected);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let script = {
        let response_payload = response_payload.clone();
        std::thread::spawn(move || {
            // Connection 1: read the request, answer with half a frame.
            let (mut conn, _) = listener.accept().unwrap();
            let _ = read_frame(&mut conn).unwrap();
            let full = Frame::new(FrameType::Response, response_payload.clone()).encode();
            use std::io::Write;
            conn.write_all(&full[..full.len() / 2]).unwrap();
            drop(conn);
            // Connection 2 (the reconnect): answer properly.
            let (mut conn, _) = listener.accept().unwrap();
            let _ = read_frame(&mut conn).unwrap();
            write_frame(&mut conn, FrameType::Response, 0, &response_payload).unwrap();
        })
    };

    let mut client = NetClient::connect(addr, ClientConfig::default()).unwrap();
    let got = client.call(&req).expect("recovers through the torn frame");
    assert_eq!(
        encode_response(&got),
        response_payload,
        "bitwise after recovery"
    );
    assert_eq!(client.reconnects(), 1);
    assert_eq!(client.retries(), 1);
    script.join().unwrap();
}

/// Regression for the empty-body ambiguity: a `Moves`/`Origins` request
/// carrying an empty list would be answered with zero verdicts — a
/// response a client cannot tell apart from a dropped evaluation. The
/// wire layer must reject both as typed `Invalid` (permanent, no retry),
/// and an empty explicit curve grid gets the same treatment.
#[test]
fn empty_kind_bodies_yield_typed_invalid_over_the_wire() {
    let _guard = net_guard();
    let spec = WorkloadSpec::default();
    let pool = scenario_pool(&spec);
    let served = Arc::new(Service::start(equivalence_config()));
    let server =
        NetServer::start(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    use fepia::serve::{CurveGrid, CurveSpec, EvalKind, EvalRequest};
    let cases: [(EvalKind, &str); 3] = [
        (
            EvalKind::Moves(Vec::new()),
            "moves request carries no moves",
        ),
        (
            EvalKind::Origins(Vec::new()),
            "origins request carries no origins",
        ),
        (
            EvalKind::Curve(CurveSpec {
                grid: CurveGrid::Explicit(Vec::new()),
            }),
            "curve grid must contain at least one level",
        ),
    ];
    for (id, (kind, expected)) in cases.into_iter().enumerate() {
        let req = EvalRequest {
            id: id as u64,
            scenario: Arc::clone(&pool[0]),
            kind,
        };
        match client.call(&req) {
            Err(NetError::Invalid(msg)) => assert_eq!(msg, expected, "request {id}"),
            Ok(resp) => panic!(
                "request {id}: empty body served {} verdicts instead of a typed rejection",
                resp.verdicts.len()
            ),
            other => panic!("request {id}: expected Invalid, got {other:?}"),
        }
    }
    assert_eq!(client.retries(), 0, "Invalid must never be retried");
    assert_eq!(client.reconnects(), 0, "Invalid must keep the connection");

    let stats = server.shutdown();
    assert_eq!(stats.invalid, 3, "every empty body counted as invalid");
    assert_eq!(stats.frames_written, 3, "each rejection was answered");
    Arc::try_unwrap(served)
        .ok()
        .expect("server released its service handle")
        .shutdown();
}

/// Graceful drain: every request the server accepted before shutdown is
/// answered before the connection closes.
#[test]
fn shutdown_drains_accepted_requests() {
    let _guard = net_guard();
    let spec = WorkloadSpec {
        seed: 5_003,
        ..WorkloadSpec::default()
    };
    let pool = scenario_pool(&spec);

    let reference = Service::start(equivalence_config());
    let served = Arc::new(Service::start(equivalence_config()));
    let server =
        NetServer::start(Arc::clone(&served), "127.0.0.1:0", ServerConfig::default()).unwrap();

    const PIPELINED: u64 = 10;
    let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
    for index in 0..PIPELINED {
        let req = request(&spec, &pool, index);
        write_frame(
            &mut conn,
            FrameType::Request,
            0,
            &fepia::net::wire::encode_request(&req),
        )
        .unwrap();
    }
    // Let the reader accept all ten, then drain.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while server.stats().frames_read < PIPELINED {
        assert!(
            std::time::Instant::now() < deadline,
            "server never read the pipelined frames"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let stats = server.shutdown();
    assert_eq!(stats.frames_written, PIPELINED, "drain answered everything");

    // All ten responses are readable — possibly out of request order
    // (shard workers race; the event loop writes completions as they
    // land) — and each is bitwise equal to the in-process reference fed
    // the same sequential stream, matched by the id echo.
    let mut by_id = std::collections::HashMap::new();
    for _ in 0..PIPELINED {
        let frame = read_frame(&mut conn).expect("drained response present");
        assert_eq!(frame.frame_type, FrameType::Response);
        let resp = fepia::net::wire::decode_response(&frame.payload).unwrap();
        assert!(
            by_id.insert(resp.id, frame.payload).is_none(),
            "duplicate response id {}",
            resp.id
        );
    }
    for index in 0..PIPELINED {
        let req = request(&spec, &pool, index);
        let expected = reference.call_blocking(req).unwrap();
        let payload = by_id
            .get(&index)
            .unwrap_or_else(|| panic!("no response for request {index}"));
        assert_eq!(payload, &encode_response(&expected), "request {index}");
    }
    reference.shutdown();
    Arc::try_unwrap(served)
        .ok()
        .expect("handle released")
        .shutdown();
}
