//! Fuzz coverage for the `fepia-net` codec (PR 5 acceptance).
//!
//! The wire protocol's contract is *total decoding*: whatever bytes arrive
//! — truncated, bit-flipped, or pure noise — the decoder returns a typed
//! [`DecodeError`] or a well-formed value. It must never panic, and it
//! must never silently misparse: the checksum makes any payload mutation
//! detectable, so a mutated frame either fails typed or (when only the
//! frame-type byte was rewritten to another valid type) still carries the
//! original payload bytes verbatim.
//!
//! Three layers are fuzzed: raw frames ([`Frame::decode`]), the streaming
//! reader ([`read_frame`] over a cursor), and the request/response/error
//! payload codecs (structural decode + semantic validation, which may
//! reject but may not panic).

use fepia::net::frame::{read_frame, Frame, FrameReadError, FrameType};
use fepia::net::wire::{
    decode_error, decode_request, decode_response, encode_request, encode_response,
};
use fepia::serve::workload::{request, scenario_pool, WorkloadSpec};
use fepia::serve::Service;
use proptest::prelude::*;
use std::io::Cursor;

/// A deterministic pool of valid encoded request payloads to mutate
/// (built once; proptest calls the accessor per case).
fn valid_request_payloads() -> &'static Vec<Vec<u8>> {
    static PAYLOADS: std::sync::OnceLock<Vec<Vec<u8>>> = std::sync::OnceLock::new();
    PAYLOADS.get_or_init(|| {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        (0..8)
            .map(|i| encode_request(&request(&spec, &pool, i)))
            .collect()
    })
}

/// A valid encoded response payload (real service output, so the verdict
/// variants that actually occur in production are covered).
fn valid_response_payload() -> &'static Vec<u8> {
    static PAYLOAD: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    PAYLOAD.get_or_init(|| {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        let service = Service::start(Default::default());
        let resp = service
            .call_blocking(request(&spec, &pool, 3))
            .expect("clean service answers");
        service.shutdown();
        encode_response(&resp)
    })
}

proptest! {
    /// Any byte vector fed to `Frame::decode` yields Ok or a typed error —
    /// never a panic. (Payload validity is the wire layer's business.)
    #[test]
    fn frame_decode_is_total_on_noise(bytes in prop::collection::vec(0u8..=255, 0..256usize)) {
        let _ = Frame::decode(&bytes); // must simply not panic
    }

    /// Same property through the streaming reader: a cursor over noise
    /// produces a typed `FrameReadError`, never a panic, and mid-frame
    /// truncation is reported as a decode error rather than `Closed`.
    #[test]
    fn read_frame_is_total_on_noise(bytes in prop::collection::vec(0u8..=255, 0..256usize)) {
        match read_frame(&mut Cursor::new(&bytes)) {
            Ok(_) | Err(FrameReadError::Decode(_)) | Err(FrameReadError::Io(_)) => {}
            Err(FrameReadError::Closed) => prop_assert!(bytes.is_empty(),
                "Closed is reserved for clean EOF before the first byte"),
        }
    }

    /// Single-byte mutation of a valid frame: decode either fails typed or
    /// returns a frame whose payload is byte-identical to the original
    /// (only a frame-type rewrite can survive the checksum).
    #[test]
    fn mutated_frames_never_misparse(
        (which, pos_seed, xor) in (0usize..8, 0usize..4096, 1u8..=255)
    ) {
        let payloads = valid_request_payloads();
        let payload = &payloads[which % payloads.len()];
        let mut bytes = Frame::new(FrameType::Request, payload.clone()).encode();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        // A typed rejection is the desired outcome; the survivable
        // mutations are a frame-type rewrite at offset 5 and the
        // unchecksummed trace-id bytes at 20..28 — both must leave the
        // payload byte-identical (they change routing/attribution, never
        // data).
        if let Ok(frame) = Frame::decode(&bytes) {
            prop_assert_eq!(&frame.payload, payload,
                "mutation at byte {} misparsed the payload", pos);
            prop_assert!(pos == 5 || (20..28).contains(&pos),
                "mutation at byte {} unexpectedly survived", pos);
        }
    }

    /// Truncating a valid frame at any interior cut yields a typed error
    /// from both the slice decoder and the streaming reader.
    #[test]
    fn truncated_frames_fail_typed(
        (which, cut_seed) in (0usize..8, 0usize..4096)
    ) {
        let payloads = valid_request_payloads();
        let payload = &payloads[which % payloads.len()];
        let bytes = Frame::new(FrameType::Request, payload.clone()).encode();
        let cut = 1 + cut_seed % (bytes.len() - 1); // 1..len: strictly partial
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
        match read_frame(&mut Cursor::new(&bytes[..cut])) {
            Err(FrameReadError::Decode(_)) | Err(FrameReadError::Io(_)) => {}
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
    }

    /// The request payload codec is total under mutation: structural decode
    /// returns Ok or a typed error, and when it returns Ok the semantic
    /// validation (`into_request`) returns Ok or Err — neither panics,
    /// whatever floats/indices the mutation produced.
    #[test]
    fn mutated_request_payloads_never_panic(
        (which, pos_seed, xor) in (0usize..8, 0usize..4096, 1u8..=255)
    ) {
        let payloads = valid_request_payloads();
        let mut payload = payloads[which % payloads.len()].clone();
        let pos = pos_seed % payload.len();
        payload[pos] ^= xor;
        if let Ok(decoded) = decode_request(&payload) {
            let _ = decoded.into_request(); // Ok or Err(String), never panic
        }
    }

    /// Response and error payload codecs are likewise total on mutation
    /// and on raw noise.
    #[test]
    fn mutated_response_and_error_payloads_never_panic(
        (pos_seed, xor, noise) in
            (0usize..4096, 1u8..=255, prop::collection::vec(0u8..=255, 0..128usize))
    ) {
        let mut payload = valid_response_payload().clone();
        let pos = pos_seed % payload.len();
        payload[pos] ^= xor;
        let _ = decode_response(&payload);
        let _ = decode_response(&noise);
        let _ = decode_error(&noise);
    }
}
