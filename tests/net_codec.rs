//! Fuzz coverage for the `fepia-net` codec (PR 5 acceptance).
//!
//! The wire protocol's contract is *total decoding*: whatever bytes arrive
//! — truncated, bit-flipped, or pure noise — the decoder returns a typed
//! [`DecodeError`] or a well-formed value. It must never panic, and it
//! must never silently misparse: the checksum makes any payload mutation
//! detectable, so a mutated frame either fails typed or (when only the
//! frame-type byte was rewritten to another valid type) still carries the
//! original payload bytes verbatim.
//!
//! Three layers are fuzzed: raw frames ([`Frame::decode`]), the streaming
//! reader ([`read_frame`] over a cursor), and the request/response/error
//! payload codecs (structural decode + semantic validation, which may
//! reject but may not panic).

use fepia::net::frame::{read_frame, Frame, FrameReadError, FrameType};
use fepia::net::wire::{
    decode_error, decode_request, decode_response, encode_request, encode_response,
};
use fepia::serve::workload::{request, scenario_pool, WorkloadSpec};
use fepia::serve::{CurveGrid, CurveSpec, EvalKind, EvalRequest, Service};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::Arc;

/// A deterministic pool of valid encoded request payloads to mutate
/// (built once; proptest calls the accessor per case).
fn valid_request_payloads() -> &'static Vec<Vec<u8>> {
    static PAYLOADS: std::sync::OnceLock<Vec<Vec<u8>>> = std::sync::OnceLock::new();
    PAYLOADS.get_or_init(|| {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        (0..8)
            .map(|i| encode_request(&request(&spec, &pool, i)))
            .collect()
    })
}

/// A valid encoded response payload (real service output, so the verdict
/// variants that actually occur in production are covered).
fn valid_response_payload() -> &'static Vec<u8> {
    static PAYLOAD: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    PAYLOAD.get_or_init(|| {
        let spec = WorkloadSpec::default();
        let pool = scenario_pool(&spec);
        let service = Service::start(Default::default());
        let resp = service
            .call_blocking(request(&spec, &pool, 3))
            .expect("clean service answers");
        service.shutdown();
        encode_response(&resp)
    })
}

/// Valid encoded `Curve` request payloads, one per grid mode, to mutate.
fn valid_curve_request_payloads() -> &'static Vec<Vec<u8>> {
    static PAYLOADS: std::sync::OnceLock<Vec<Vec<u8>>> = std::sync::OnceLock::new();
    PAYLOADS.get_or_init(|| {
        let pool = scenario_pool(&WorkloadSpec::default());
        curve_requests(&pool).iter().map(encode_request).collect()
    })
}

/// One explicit-grid and one adaptive-grid curve request over the pool.
fn curve_requests(pool: &[Arc<fepia::serve::Scenario>]) -> Vec<EvalRequest> {
    vec![
        EvalRequest {
            id: 41,
            scenario: Arc::clone(&pool[0]),
            kind: EvalKind::Curve(CurveSpec {
                grid: CurveGrid::Explicit(vec![1.0, 1.1, 1.25, 1.5, 2.0]),
            }),
        },
        EvalRequest {
            id: 42,
            scenario: Arc::clone(&pool[1]),
            kind: EvalKind::Curve(CurveSpec {
                grid: CurveGrid::Adaptive {
                    tau_lo: 1.0,
                    tau_hi: 2.5,
                    max_depth: 4,
                    rho_resolution: 1e-3,
                },
            }),
        },
    ]
}

/// A valid encoded `Curve` response (real service output, so the trailing
/// curve-meta section is populated).
fn valid_curve_response_payload() -> &'static Vec<u8> {
    static PAYLOAD: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    PAYLOAD.get_or_init(|| {
        let pool = scenario_pool(&WorkloadSpec::default());
        let service = Service::start(Default::default());
        let resp = service
            .call_blocking(curve_requests(&pool).remove(0))
            .expect("clean service answers curves");
        service.shutdown();
        assert!(resp.curve.is_some(), "curve responses carry meta");
        encode_response(&resp)
    })
}

proptest! {
    /// Any byte vector fed to `Frame::decode` yields Ok or a typed error —
    /// never a panic. (Payload validity is the wire layer's business.)
    #[test]
    fn frame_decode_is_total_on_noise(bytes in prop::collection::vec(0u8..=255, 0..256usize)) {
        let _ = Frame::decode(&bytes); // must simply not panic
    }

    /// Same property through the streaming reader: a cursor over noise
    /// produces a typed `FrameReadError`, never a panic, and mid-frame
    /// truncation is reported as a decode error rather than `Closed`.
    #[test]
    fn read_frame_is_total_on_noise(bytes in prop::collection::vec(0u8..=255, 0..256usize)) {
        match read_frame(&mut Cursor::new(&bytes)) {
            Ok(_) | Err(FrameReadError::Decode(_)) | Err(FrameReadError::Io(_)) => {}
            Err(FrameReadError::Closed) => prop_assert!(bytes.is_empty(),
                "Closed is reserved for clean EOF before the first byte"),
        }
    }

    /// Single-byte mutation of a valid frame: decode either fails typed or
    /// returns a frame whose payload is byte-identical to the original
    /// (only a frame-type rewrite can survive the checksum).
    #[test]
    fn mutated_frames_never_misparse(
        (which, pos_seed, xor) in (0usize..8, 0usize..4096, 1u8..=255)
    ) {
        let payloads = valid_request_payloads();
        let payload = &payloads[which % payloads.len()];
        let mut bytes = Frame::new(FrameType::Request, payload.clone()).encode();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        // A typed rejection is the desired outcome; the survivable
        // mutations are a frame-type rewrite at offset 5 and the
        // unchecksummed trace-id bytes at 20..28 — both must leave the
        // payload byte-identical (they change routing/attribution, never
        // data).
        if let Ok(frame) = Frame::decode(&bytes) {
            prop_assert_eq!(&frame.payload, payload,
                "mutation at byte {} misparsed the payload", pos);
            prop_assert!(pos == 5 || (20..28).contains(&pos),
                "mutation at byte {} unexpectedly survived", pos);
        }
    }

    /// Truncating a valid frame at any interior cut yields a typed error
    /// from both the slice decoder and the streaming reader.
    #[test]
    fn truncated_frames_fail_typed(
        (which, cut_seed) in (0usize..8, 0usize..4096)
    ) {
        let payloads = valid_request_payloads();
        let payload = &payloads[which % payloads.len()];
        let bytes = Frame::new(FrameType::Request, payload.clone()).encode();
        let cut = 1 + cut_seed % (bytes.len() - 1); // 1..len: strictly partial
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
        match read_frame(&mut Cursor::new(&bytes[..cut])) {
            Err(FrameReadError::Decode(_)) | Err(FrameReadError::Io(_)) => {}
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
    }

    /// The request payload codec is total under mutation: structural decode
    /// returns Ok or a typed error, and when it returns Ok the semantic
    /// validation (`into_request`) returns Ok or Err — neither panics,
    /// whatever floats/indices the mutation produced.
    #[test]
    fn mutated_request_payloads_never_panic(
        (which, pos_seed, xor) in (0usize..8, 0usize..4096, 1u8..=255)
    ) {
        let payloads = valid_request_payloads();
        let mut payload = payloads[which % payloads.len()].clone();
        let pos = pos_seed % payload.len();
        payload[pos] ^= xor;
        if let Ok(decoded) = decode_request(&payload) {
            let _ = decoded.into_request(); // Ok or Err(String), never panic
        }
    }

    /// Response and error payload codecs are likewise total on mutation
    /// and on raw noise.
    #[test]
    fn mutated_response_and_error_payloads_never_panic(
        (pos_seed, xor, noise) in
            (0usize..4096, 1u8..=255, prop::collection::vec(0u8..=255, 0..128usize))
    ) {
        let mut payload = valid_response_payload().clone();
        let pos = pos_seed % payload.len();
        payload[pos] ^= xor;
        let _ = decode_response(&payload);
        let _ = decode_response(&noise);
        let _ = decode_error(&noise);
    }

    /// `Curve` frames obey the same misparse contract as every other
    /// kind: a single-byte mutation is either rejected typed or survives
    /// only at the unchecksummed offsets with the payload intact.
    #[test]
    fn mutated_curve_frames_never_misparse(
        (which, pos_seed, xor) in (0usize..2, 0usize..4096, 1u8..=255)
    ) {
        let payloads = valid_curve_request_payloads();
        let payload = &payloads[which % payloads.len()];
        let mut bytes = Frame::new(FrameType::Request, payload.clone()).encode();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        if let Ok(frame) = Frame::decode(&bytes) {
            prop_assert_eq!(&frame.payload, payload,
                "mutation at byte {} misparsed the curve payload", pos);
            prop_assert!(pos == 5 || (20..28).contains(&pos),
                "mutation at byte {} unexpectedly survived", pos);
        }
    }

    /// Curve request decoding is total under byte mutation: grid tags,
    /// level counts and IEEE bits can all be corrupted; the decoder and
    /// the semantic validation return typed results, never panic, and
    /// never over-allocate on a hostile level count.
    #[test]
    fn mutated_curve_request_payloads_never_panic(
        (which, pos_seed, xor) in (0usize..2, 0usize..4096, 1u8..=255)
    ) {
        let payloads = valid_curve_request_payloads();
        let mut payload = payloads[which % payloads.len()].clone();
        let pos = pos_seed % payload.len();
        payload[pos] ^= xor;
        if let Ok(decoded) = decode_request(&payload) {
            let _ = decoded.into_request(); // Ok or Err(String), never panic
        }
    }

    /// Curve response decoding (the trailing per-point τ array and
    /// monotone flag) is likewise total on mutation and raw noise, and
    /// every truncation of the real payload fails typed.
    #[test]
    fn mutated_curve_response_payloads_never_panic(
        (pos_seed, xor, cut_seed) in (0usize..4096, 1u8..=255, 0usize..4096)
    ) {
        let mut payload = valid_curve_response_payload().clone();
        let cut = cut_seed % payload.len();
        prop_assert!(decode_response(&payload[..cut]).is_err(),
            "truncation at {} must fail typed", cut);
        let pos = pos_seed % payload.len();
        payload[pos] ^= xor;
        let _ = decode_response(&payload); // Ok or typed error, never panic
    }
}

/// A hostile length claim on the per-point τ array — the count field
/// rewritten to promise ~10^18 levels — must be rejected by the
/// pre-allocation guard before any allocation, not trusted.
#[test]
fn hostile_curve_point_count_fails_typed() {
    let payload = valid_curve_response_payload();
    // Trailing section layout: ... count:u64, τ×8 each, monotone:u8.
    let taus = 5; // curve_requests()[0] explicit grid length
    let count_pos = payload.len() - 1 - taus * 8 - 8;
    let mut hostile = payload.clone();
    hostile[count_pos..count_pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(
        decode_response(&hostile).is_err(),
        "a 2^64 point-count claim must fail typed, not allocate"
    );
}
