//! Observability must never perturb results: with metrics, spans and a
//! JSONL event sink all active, the parallel sweeps have to produce
//! bitwise-identical numbers for any thread count — and identical to the
//! fully-disabled sequential run. Also pins the JSON-lines event schema.

use fepia_core::{
    robustness_radius, AnalysisPlan, FeatureSpec, FepiaAnalysis, FnImpact, LinearImpact,
    Perturbation, RadiusOptions, Tolerance,
};
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::{DeltaEval, Mapping};
use fepia_optim::VecN;
use fepia_par::{par_map, par_map_dynamic, ParConfig};
use fepia_stats::rng_for;
use rand::Rng;
use std::sync::{Arc, Mutex, OnceLock};

/// The obs layer is process-global; serialize the tests that toggle it.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .expect("obs test lock")
}

/// One numerically-solved robustness radius per item, seeded from the item
/// index — the same shape as the paper sweeps.
fn radius_for_item(i: usize) -> f64 {
    let mut rng = rng_for(0xFE91A, i as u64);
    let origin = VecN::from([rng.gen_range(-0.5..0.5f64), rng.gen_range(-0.5..0.5f64)]);
    let scale = rng.gen_range(1.0..3.0f64);
    let impact = FnImpact::new(move |v: &VecN| scale * v.dot(v)).with_dim(2);
    let pert = Perturbation::continuous("p", origin);
    let feature = FeatureSpec::new("f", Tolerance::upper(10.0));
    robustness_radius(&feature, &impact, &pert, &RadiusOptions::default())
        .expect("radius solve")
        .radius
}

#[test]
fn sweep_is_bitwise_identical_across_thread_counts_with_obs_on() {
    let _guard = obs_lock();
    let items: Vec<usize> = (0..48).collect();

    // Reference: obs fully disabled, sequential.
    fepia_obs::set_enabled(false);
    fepia_obs::set_events_enabled(false);
    let reference: Vec<u64> = items
        .iter()
        .map(|&i| radius_for_item(i).to_bits())
        .collect();

    // Everything on: metrics + spans + a real JSONL file sink.
    let dir = std::env::temp_dir().join("fepia-obs-determinism");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("events.jsonl");
    let prev = fepia_obs::install_sink(Arc::new(
        fepia_obs::JsonlSink::create(&path).expect("jsonl sink"),
    ));
    fepia_obs::set_enabled(true);
    fepia_obs::set_events_enabled(true);

    for threads in [1, 2, 8] {
        let cfg = ParConfig::with_threads(threads);
        let stat: Vec<u64> = par_map(&items, &cfg, |_, &i| radius_for_item(i).to_bits());
        let dyn_: Vec<u64> = par_map_dynamic(&items, &cfg, |_, &i| radius_for_item(i).to_bits());
        assert_eq!(stat, reference, "par_map diverged at {threads} threads");
        assert_eq!(
            dyn_, reference,
            "par_map_dynamic diverged at {threads} threads"
        );
    }

    fepia_obs::set_enabled(false);
    fepia_obs::set_events_enabled(false);
    fepia_obs::flush_sink();
    match prev {
        Some(prev) => {
            fepia_obs::install_sink(prev);
        }
        None => {
            fepia_obs::clear_sink();
        }
    }

    // The sink actually captured the run, one JSON object per line.
    let text = std::fs::read_to_string(&path).expect("events file");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= items.len(),
        "expected at least one event per item, got {}",
        lines.len()
    );
    for line in &lines {
        assert!(
            line.starts_with(r#"{"schema":"fepia.event/v1","event":""#),
            "bad event line: {line}"
        );
        assert!(line.ends_with('}'), "unterminated event line: {line}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn event_stream_matches_golden_schema() {
    let _guard = obs_lock();
    let sink = Arc::new(fepia_obs::VecSink::new());
    let prev = fepia_obs::install_sink(sink.clone());
    fepia_obs::set_enabled(true);
    fepia_obs::set_events_enabled(true);

    let impact = FnImpact::new(|v: &VecN| v.dot(v)).with_dim(2);
    let pert = Perturbation::continuous("p", VecN::zeros(2));
    let feature = FeatureSpec::new("mach1", Tolerance::upper(25.0));
    let r = robustness_radius(&feature, &impact, &pert, &RadiusOptions::default())
        .expect("radius solve");
    assert!((r.radius - 5.0).abs() < 1e-5);

    fepia_obs::set_enabled(false);
    fepia_obs::set_events_enabled(false);
    match prev {
        Some(prev) => {
            fepia_obs::install_sink(prev);
        }
        None => {
            fepia_obs::clear_sink();
        }
    }

    let lines = sink.lines();
    // One solver event and one radius event, in causal order.
    let solver = lines
        .iter()
        .find(|l| l.contains(r#""event":"solver.solve""#))
        .expect("solver.solve event emitted");
    for key in [
        "\"outcome\":",
        "\"radius\":",
        "\"iterations\":",
        "\"f_evals\":",
        "\"grad_evals\":",
    ] {
        assert!(solver.contains(key), "solver.solve missing {key}: {solver}");
    }
    let radius = lines
        .iter()
        .find(|l| l.contains(r#""event":"radius.computed""#))
        .expect("radius.computed event emitted");
    assert!(
        radius.contains(r#""feature":"mach1""#),
        "binding-feature identity missing: {radius}"
    );
    for key in [
        "\"method\":\"numeric\"",
        "\"bound\":\"max\"",
        "\"violated\":false",
    ] {
        assert!(
            radius.contains(key),
            "radius.computed missing {key}: {radius}"
        );
    }
}

/// One compiled plan (affine + numeric feature) over a seeded batch of
/// origins — the compiled analogue of `radius_for_item`.
fn batch_plan_and_origins() -> (Arc<AnalysisPlan>, Vec<VecN>) {
    let mut analysis = FepiaAnalysis::new(Perturbation::continuous("p", VecN::zeros(2)));
    analysis.add_feature(
        FeatureSpec::new("aff", Tolerance::upper(4.0)),
        LinearImpact::new(VecN::from([1.0, 2.0]), 0.5),
    );
    analysis.add_feature(
        FeatureSpec::new("num", Tolerance::upper(10.0)),
        FnImpact::new(|v: &VecN| v.dot(v)).with_dim(2),
    );
    let plan = analysis
        .compile(&RadiusOptions::default())
        .expect("compiles");
    let origins = (0..48)
        .map(|i| {
            let mut rng = rng_for(0xBA7C4, i);
            VecN::from([rng.gen_range(-0.5..0.5f64), rng.gen_range(-0.5..0.5f64)])
        })
        .collect();
    (plan, origins)
}

/// A seeded 60-move DeltaEval walk; returns the metric bits after each
/// move. The evaluator is dropped before returning, so its `plan.delta.*`
/// counters flush while the caller's obs state is still in effect.
fn delta_walk_metric_bits() -> Vec<u64> {
    let params = EtcParams::paper_section_4_2();
    let etc = generate_cvb(&mut rng_for(0xDE17A, 0), &params);
    let start = Mapping::random(&mut rng_for(0xDE17A, 1), params.apps, params.machines);
    let mut rng = rng_for(0xDE17A, 2);
    let mut delta = DeltaEval::new(&etc, &start, 1.2);
    (0..60)
        .map(|_| {
            let app = rng.gen_range(0..params.apps);
            let dst = rng.gen_range(0..params.machines);
            delta.apply(app, dst);
            delta.metric().to_bits()
        })
        .collect()
}

#[test]
fn compiled_batch_and_delta_are_deterministic_under_obs() {
    let _guard = obs_lock();

    // Reference: obs fully disabled, sequential batch + delta walk.
    fepia_obs::set_enabled(false);
    fepia_obs::set_events_enabled(false);
    let (plan, origins) = batch_plan_and_origins();
    let reference: Vec<u64> = plan
        .evaluate_batch(&origins)
        .expect("batch evaluates")
        .iter()
        .map(|e| e.metric.to_bits())
        .collect();
    let delta_reference = delta_walk_metric_bits();

    // Everything on: metrics + spans + a real JSONL file sink.
    let dir = std::env::temp_dir().join("fepia-obs-plan-determinism");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("events.jsonl");
    let prev = fepia_obs::install_sink(Arc::new(
        fepia_obs::JsonlSink::create(&path).expect("jsonl sink"),
    ));
    fepia_obs::set_enabled(true);
    fepia_obs::set_events_enabled(true);

    // Recompiling through the analysis cache counts a hit while obs is on.
    let (plan_obs, _) = batch_plan_and_origins();
    for threads in [1, 2, 8] {
        let cfg = ParConfig::with_threads(threads);
        let par_bits: Vec<u64> = plan_obs
            .evaluate_batch_par(&origins, &cfg)
            .expect("parallel batch evaluates")
            .iter()
            .map(|e| e.metric.to_bits())
            .collect();
        assert_eq!(
            par_bits, reference,
            "evaluate_batch_par diverged at {threads} threads"
        );
    }
    let delta_obs = delta_walk_metric_bits();
    assert_eq!(delta_obs, delta_reference, "DeltaEval diverged under obs");

    fepia_obs::set_enabled(false);
    fepia_obs::set_events_enabled(false);
    fepia_obs::flush_sink();
    match prev {
        Some(prev) => {
            fepia_obs::install_sink(prev);
        }
        None => {
            fepia_obs::clear_sink();
        }
    }

    // The plan.* counters recorded the compiled-path work.
    let snap = fepia_obs::global().snapshot();
    assert!(snap.counter("plan.compiles").unwrap_or(0) >= 1);
    assert!(
        snap.counter("plan.eval.batch.items").unwrap_or(0) >= 3 * origins.len() as u64,
        "batch item counter missing the three sweeps"
    );
    // 60 random moves, minus the ~1/5 that are no-ops (app already on the
    // drawn machine) and skip the counter.
    assert!(
        snap.counter("plan.delta.moves").unwrap_or(0) >= 30,
        "DeltaEval drop did not flush its move counter"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn metrics_snapshot_reports_solver_and_par_counters() {
    let _guard = obs_lock();
    fepia_obs::set_enabled(true);
    let items: Vec<usize> = (0..40).collect();
    let _ = par_map_dynamic(&items, &ParConfig::with_threads(4), |_, &i| {
        radius_for_item(i)
    });
    fepia_obs::set_enabled(false);

    let snap = fepia_obs::global().snapshot();
    assert!(snap.counter("optim.solver.calls").unwrap_or(0) > 0);
    assert!(snap.counter("core.radius.dispatch.numeric").unwrap_or(0) > 0);
    assert!(snap.counter("par.dynamic.items").unwrap_or(0) >= items.len() as u64);
    let json = snap.to_json();
    assert!(json.starts_with(r#"{"schema":"fepia.metrics/v1""#));
}
