//! Observability must never perturb results: with metrics, spans and a
//! JSONL event sink all active, the parallel sweeps have to produce
//! bitwise-identical numbers for any thread count — and identical to the
//! fully-disabled sequential run. Also pins the JSON-lines event schema.

use fepia_core::{
    robustness_radius, FeatureSpec, FnImpact, Perturbation, RadiusOptions, Tolerance,
};
use fepia_optim::VecN;
use fepia_par::{par_map, par_map_dynamic, ParConfig};
use fepia_stats::rng_for;
use rand::Rng;
use std::sync::{Arc, Mutex, OnceLock};

/// The obs layer is process-global; serialize the tests that toggle it.
fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .expect("obs test lock")
}

/// One numerically-solved robustness radius per item, seeded from the item
/// index — the same shape as the paper sweeps.
fn radius_for_item(i: usize) -> f64 {
    let mut rng = rng_for(0xFE91A, i as u64);
    let origin = VecN::from([rng.gen_range(-0.5..0.5f64), rng.gen_range(-0.5..0.5f64)]);
    let scale = rng.gen_range(1.0..3.0f64);
    let impact = FnImpact::new(move |v: &VecN| scale * v.dot(v)).with_dim(2);
    let pert = Perturbation::continuous("p", origin);
    let feature = FeatureSpec::new("f", Tolerance::upper(10.0));
    robustness_radius(&feature, &impact, &pert, &RadiusOptions::default())
        .expect("radius solve")
        .radius
}

#[test]
fn sweep_is_bitwise_identical_across_thread_counts_with_obs_on() {
    let _guard = obs_lock();
    let items: Vec<usize> = (0..48).collect();

    // Reference: obs fully disabled, sequential.
    fepia_obs::set_enabled(false);
    fepia_obs::set_events_enabled(false);
    let reference: Vec<u64> = items
        .iter()
        .map(|&i| radius_for_item(i).to_bits())
        .collect();

    // Everything on: metrics + spans + a real JSONL file sink.
    let dir = std::env::temp_dir().join("fepia-obs-determinism");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("events.jsonl");
    let prev = fepia_obs::install_sink(Arc::new(
        fepia_obs::JsonlSink::create(&path).expect("jsonl sink"),
    ));
    fepia_obs::set_enabled(true);
    fepia_obs::set_events_enabled(true);

    for threads in [1, 2, 8] {
        let cfg = ParConfig::with_threads(threads);
        let stat: Vec<u64> = par_map(&items, &cfg, |_, &i| radius_for_item(i).to_bits());
        let dyn_: Vec<u64> = par_map_dynamic(&items, &cfg, |_, &i| radius_for_item(i).to_bits());
        assert_eq!(stat, reference, "par_map diverged at {threads} threads");
        assert_eq!(
            dyn_, reference,
            "par_map_dynamic diverged at {threads} threads"
        );
    }

    fepia_obs::set_enabled(false);
    fepia_obs::set_events_enabled(false);
    fepia_obs::flush_sink();
    match prev {
        Some(prev) => {
            fepia_obs::install_sink(prev);
        }
        None => {
            fepia_obs::clear_sink();
        }
    }

    // The sink actually captured the run, one JSON object per line.
    let text = std::fs::read_to_string(&path).expect("events file");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= items.len(),
        "expected at least one event per item, got {}",
        lines.len()
    );
    for line in &lines {
        assert!(
            line.starts_with(r#"{"schema":"fepia.event/v1","event":""#),
            "bad event line: {line}"
        );
        assert!(line.ends_with('}'), "unterminated event line: {line}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn event_stream_matches_golden_schema() {
    let _guard = obs_lock();
    let sink = Arc::new(fepia_obs::VecSink::new());
    let prev = fepia_obs::install_sink(sink.clone());
    fepia_obs::set_enabled(true);
    fepia_obs::set_events_enabled(true);

    let impact = FnImpact::new(|v: &VecN| v.dot(v)).with_dim(2);
    let pert = Perturbation::continuous("p", VecN::zeros(2));
    let feature = FeatureSpec::new("mach1", Tolerance::upper(25.0));
    let r = robustness_radius(&feature, &impact, &pert, &RadiusOptions::default())
        .expect("radius solve");
    assert!((r.radius - 5.0).abs() < 1e-5);

    fepia_obs::set_enabled(false);
    fepia_obs::set_events_enabled(false);
    match prev {
        Some(prev) => {
            fepia_obs::install_sink(prev);
        }
        None => {
            fepia_obs::clear_sink();
        }
    }

    let lines = sink.lines();
    // One solver event and one radius event, in causal order.
    let solver = lines
        .iter()
        .find(|l| l.contains(r#""event":"solver.solve""#))
        .expect("solver.solve event emitted");
    for key in [
        "\"outcome\":",
        "\"radius\":",
        "\"iterations\":",
        "\"f_evals\":",
        "\"grad_evals\":",
    ] {
        assert!(solver.contains(key), "solver.solve missing {key}: {solver}");
    }
    let radius = lines
        .iter()
        .find(|l| l.contains(r#""event":"radius.computed""#))
        .expect("radius.computed event emitted");
    assert!(
        radius.contains(r#""feature":"mach1""#),
        "binding-feature identity missing: {radius}"
    );
    for key in [
        "\"method\":\"numeric\"",
        "\"bound\":\"max\"",
        "\"violated\":false",
    ] {
        assert!(
            radius.contains(key),
            "radius.computed missing {key}: {radius}"
        );
    }
}

#[test]
fn metrics_snapshot_reports_solver_and_par_counters() {
    let _guard = obs_lock();
    fepia_obs::set_enabled(true);
    let items: Vec<usize> = (0..40).collect();
    let _ = par_map_dynamic(&items, &ParConfig::with_threads(4), |_, &i| {
        radius_for_item(i)
    });
    fepia_obs::set_enabled(false);

    let snap = fepia_obs::global().snapshot();
    assert!(snap.counter("optim.solver.calls").unwrap_or(0) > 0);
    assert!(snap.counter("core.radius.dispatch.numeric").unwrap_or(0) > 0);
    assert!(snap.counter("par.dynamic.items").unwrap_or(0) >= items.len() as u64);
    let json = snap.to_json();
    assert!(json.starts_with(r#"{"schema":"fepia.metrics/v1""#));
}
