//! Optimizer jobs end to end (the PR 10 tentpole acceptance suite).
//!
//! A job is a seeded heuristic population folded into a makespan ×
//! robustness Pareto front. Candidate `k` is a pure function of
//! `(seed, k)` — its heuristic is `k % heuristics.len()`, its RNG is
//! `rng_for(seed, k)` — and the runner folds results in index order, so
//! the front is *bitwise* independent of worker-thread count, batch
//! size, transport, and fault injection. This suite pins that contract:
//!
//! * **property** — the incremental [`ParetoFront::offer`] front equals
//!   the quadratic brute-force dominance filter bitwise, for arbitrary
//!   candidate streams (ties and duplicates included) and for real
//!   seeded jobs at any seed;
//! * **determinism** — a fixed-seed job yields a bitwise-identical
//!   front across two runs, across 1/2/8 worker threads, and across
//!   batching choices;
//! * **transport** — a front served over TCP (wire-v3 `SubmitJob` /
//!   `JobStatus` / `JobResult` frames) is bitwise identical to the
//!   in-process [`JobTable`] answer, including under the fixed CI chaos
//!   seed `2003:0.2` (injected worker panics are re-dispatched, dropped
//!   connections reconnect; faults cost retries, never bits);
//! * **lifecycle** — admission past the concurrent-job bound, invalid
//!   specs, unknown ids, and cancellation are *typed* outcomes, never
//!   panics; cancellation frees capacity and the cancelled front equals
//!   the same-seed uncancelled prefix bitwise.
//!
//! Chaos state is process-global, so every test holds one lock.

use fepia::etc::{generate_cvb, EtcParams};
use fepia::mapping::{pareto_filter, EtcMatrix, FrontPoint, ParetoFront};
use fepia::net::{ClientConfig, NetClient, NetError, NetServer, ServerConfig};
use fepia::serve::{
    JobError, JobHeuristic, JobSnapshot, JobSpec, JobState, JobTable, JobTableConfig, Service,
    ServiceConfig, ShedReason,
};
use fepia::stats::rng_for;
use proptest::prelude::*;
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

static JOB_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the tests (chaos is process-wide) with the panic hook
/// silencing intentional injected worker panics, chaos initially off.
fn guard() -> std::sync::MutexGuard<'static, ()> {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let text = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !text.contains("chaos: injected panic") {
                previous(info);
            }
        }));
    });
    let guard = JOB_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    fepia::chaos::clear();
    guard
}

/// The paper's §4.2 system (20 apps × 5 machines, CVB heterogeneity).
fn paper_etc(seed: u64) -> Arc<EtcMatrix> {
    Arc::new(generate_cvb(
        &mut rng_for(seed, 1_000),
        &EtcParams::paper_section_4_2(),
    ))
}

/// A mixed four-heuristic portfolio small enough for tests.
fn portfolio() -> Vec<JobHeuristic> {
    vec![
        JobHeuristic::RobustGreedy,
        JobHeuristic::Annealing {
            iterations: 400,
            initial_temperature: 0.1,
            cooling: 0.995,
        },
        JobHeuristic::Tabu {
            iterations: 4,
            tabu_len: 16,
        },
        JobHeuristic::Genetic {
            population: 16,
            generations: 6,
            mutation_rate: 0.05,
        },
    ]
}

fn spec(etc: &Arc<EtcMatrix>, seed: u64, population: u32, batches: u32, threads: u32) -> JobSpec {
    JobSpec {
        etc: Arc::clone(etc),
        tau: 1.2,
        seed,
        population,
        batches,
        heuristics: portfolio(),
        threads,
    }
}

/// A deliberately slow single-heuristic spec (one candidate per batch)
/// so cancellation tests can land mid-flight deterministically.
fn slow_spec(etc: &Arc<EtcMatrix>, seed: u64) -> JobSpec {
    JobSpec {
        etc: Arc::clone(etc),
        tau: 1.2,
        seed,
        population: 256,
        batches: 256,
        heuristics: vec![JobHeuristic::Annealing {
            iterations: 50_000,
            initial_temperature: 0.1,
            cooling: 0.9999,
        }],
        threads: 1,
    }
}

/// Bitwise front equality: every coordinate compared as IEEE bit
/// patterns, plus the provenance fields the wire transports.
fn assert_fronts_bitwise_equal(a: &JobSnapshot, b: &JobSnapshot, what: &str) {
    assert_eq!(a.front.len(), b.front.len(), "{what}: front sizes differ");
    for (x, y) in a.front.iter().zip(&b.front) {
        assert_eq!(x.index, y.index, "{what}: candidate index differs");
        assert_eq!(
            x.makespan.to_bits(),
            y.makespan.to_bits(),
            "{what}: makespan differs bitwise at candidate {}",
            x.index
        );
        assert_eq!(
            x.metric.to_bits(),
            y.metric.to_bits(),
            "{what}: Eq. 7 metric differs bitwise at candidate {}",
            x.index
        );
        assert_eq!(x.heuristic, y.heuristic, "{what}: heuristic label differs");
        assert_eq!(x.assignment, y.assignment, "{what}: assignment differs");
    }
    assert_eq!(
        ParetoFront::from_points(a.front.clone()).digest(),
        ParetoFront::from_points(b.front.clone()).digest(),
        "{what}: front digests differ"
    );
}

// ---------------------------------------------------------------------------
// Property: incremental front == brute-force dominance filter, bitwise.
// ---------------------------------------------------------------------------

proptest! {
    /// Arbitrary candidate streams drawn from a small coordinate grid —
    /// dense in ties, duplicates, and dominance chains — folded
    /// incrementally must match the quadratic reference filter bitwise.
    #[test]
    fn incremental_front_matches_brute_force_filter(
        raw in prop::collection::vec((0usize..8, 0usize..8), 0..80)
    ) {
        let grid = [1.0f64, 1.25, 2.0, 2.5, 3.75, 4.0, 7.5, 9.0];
        let candidates: Vec<FrontPoint> = raw
            .iter()
            .enumerate()
            .map(|(i, &(m, r))| FrontPoint {
                index: i as u64,
                makespan: grid[m],
                metric: grid[r],
                heuristic: "synthetic".to_string(),
                assignment: vec![i % 5],
            })
            .collect();

        let mut front = ParetoFront::new();
        for c in &candidates {
            front.offer(c.clone());
        }
        let brute = pareto_filter(&candidates);

        prop_assert_eq!(front.len(), brute.len());
        for (a, b) in front.points().iter().zip(&brute) {
            prop_assert_eq!(a.index, b.index);
            prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
            prop_assert_eq!(a.metric.to_bits(), b.metric.to_bits());
        }
        prop_assert_eq!(
            front.digest(),
            ParetoFront::from_points(brute).digest()
        );
    }
}

proptest! {
    /// A real seeded job at *any* seed: the served front must equal the
    /// brute-force filter over an independent re-evaluation of every
    /// candidate, and must not care how the population was batched or
    /// how many threads folded it.
    #[test]
    fn any_seed_job_front_matches_independent_candidates(
        seed in 0u64..u64::MAX,
        batches in 1u32..5,
        threads in 1u32..3,
    ) {
        let _guard = guard();
        let etc = paper_etc(7);
        let population = 12u32;
        let table = JobTable::new(JobTableConfig::default());
        let snap = table
            .run(spec(&etc, seed, population, batches, threads))
            .expect("a valid spec runs");
        prop_assert_eq!(snap.state, JobState::Done);

        // Independent oracle: evaluate every candidate directly (pure in
        // (seed, k)) and brute-force filter.
        let heuristics = portfolio();
        let built: Vec<_> = heuristics.iter().map(|h| h.build(1.2)).collect();
        let candidates: Vec<FrontPoint> = (0..population as u64)
            .map(|k| {
                let h = &built[(k % built.len() as u64) as usize];
                let mut rng = rng_for(seed, k);
                let mapping = h.map(&etc, &mut rng);
                FrontPoint::evaluate(&etc, &mapping, 1.2, h.name(), k)
            })
            .collect();
        let brute = pareto_filter(&candidates);

        prop_assert_eq!(snap.front.len(), brute.len());
        for (a, b) in snap.front.iter().zip(&brute) {
            prop_assert_eq!(a.index, b.index);
            prop_assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
            prop_assert_eq!(a.metric.to_bits(), b.metric.to_bits());
            prop_assert_eq!(&a.assignment, &b.assignment);
        }
    }
}

// ---------------------------------------------------------------------------
// Fixed-seed determinism: runs × thread counts × batching.
// ---------------------------------------------------------------------------

#[test]
fn fixed_seed_front_is_bitwise_identical_across_runs_and_threads() {
    let _guard = guard();
    let etc = paper_etc(2003);
    let table = JobTable::new(JobTableConfig::default());

    let reference = table
        .run(spec(&etc, 42, 48, 6, 1))
        .expect("reference run succeeds");
    assert_eq!(reference.state, JobState::Done);
    assert!(
        !reference.front.is_empty(),
        "a completed job serves a non-empty front"
    );
    assert_eq!(reference.candidates_done, 48);
    assert_eq!(reference.evals_done, reference.evals_total);

    // Second run, same everything: bitwise identical.
    let rerun = table.run(spec(&etc, 42, 48, 6, 1)).expect("rerun succeeds");
    assert_fronts_bitwise_equal(&reference, &rerun, "same-seed rerun");

    // Thread count never changes results, only wall time.
    for threads in [2u32, 8] {
        let t = table
            .run(spec(&etc, 42, 48, 6, threads))
            .expect("threaded run succeeds");
        assert_fronts_bitwise_equal(&reference, &t, &format!("{threads} threads"));
    }

    // Batching granularity only changes when progress is published.
    for batches in [1u32, 48] {
        let b = table
            .run(spec(&etc, 42, 48, batches, 2))
            .expect("rebatched run succeeds");
        assert_fronts_bitwise_equal(&reference, &b, &format!("{batches} batches"));
    }

    // The front is makespan-ascending and mutually non-dominated.
    for w in reference.front.windows(2) {
        assert!(
            w[0].makespan < w[1].makespan && w[0].metric <= w[1].metric,
            "front must trade makespan against robustness monotonically"
        );
    }
}

// ---------------------------------------------------------------------------
// Transport: TCP == in-process, chaos-off and under the CI chaos seed.
// ---------------------------------------------------------------------------

#[test]
fn tcp_front_is_bitwise_identical_to_in_process() {
    let _guard = guard();
    let etc = paper_etc(2003);

    let in_process = JobTable::new(JobTableConfig::default())
        .run(spec(&etc, 9, 24, 4, 2))
        .expect("in-process run succeeds");

    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server =
        NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    let submitted = client
        .submit_job(1, &spec(&etc, 9, 24, 4, 2))
        .expect("submit succeeds chaos-off");
    let job = submitted.job;
    assert_eq!(submitted.state, JobState::Running);

    // Progress polls stream best-so-far snapshots: monotone counters,
    // every intermediate front already non-dominated.
    let mut last_done = 0u64;
    let final_snap = loop {
        let s = client.job_status(100, job).expect("poll succeeds");
        assert!(s.candidates_done >= last_done, "progress must be monotone");
        last_done = s.candidates_done;
        for w in s.front.windows(2) {
            assert!(w[0].makespan < w[1].makespan);
        }
        if s.state.is_terminal() {
            break s;
        }
        std::thread::sleep(Duration::from_millis(1));
    };

    assert_eq!(final_snap.state, JobState::Done);
    assert_eq!(final_snap.candidates_done, 24);
    assert_fronts_bitwise_equal(&in_process, &final_snap, "TCP vs in-process");

    server.shutdown();
}

#[test]
fn chaos_seeded_job_front_matches_chaos_off_ground_truth() {
    let _guard = guard();
    let etc = paper_etc(2003);
    let job_spec = spec(&etc, 11, 24, 6, 2);

    // Ground truth, chaos off.
    let truth = JobTable::new(JobTableConfig::default())
        .run(job_spec.clone())
        .expect("chaos-off run succeeds");
    assert_eq!(truth.state, JobState::Done);

    // The fixed CI seed: 20% of every chaos site fires — par.task panics
    // are re-dispatched (16-deep budget), mapping.delta.load poisons
    // self-heal bitwise. Faults must not move a single bit of the front.
    fepia::chaos::set_for_test(2003, 0.2);
    let chaotic = JobTable::new(JobTableConfig::default())
        .run(job_spec.clone())
        .expect("chaos costs retries, not outcomes");
    assert_eq!(chaotic.state, JobState::Done);
    assert_fronts_bitwise_equal(&truth, &chaotic, "in-process under chaos");

    // Same job over TCP under the same seed: net.read drops connections,
    // net.write tears frames; the client reconnects and retries.
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server = NetServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            // A lost submit *reply* leaves the job running server-side and
            // the retry submits a fresh one; keep the bound generous so
            // duplicates never trip admission (determinism makes every
            // duplicate's front identical anyway).
            jobs: JobTableConfig {
                max_jobs: 64,
                ..JobTableConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = NetClient::connect(
        server.local_addr(),
        ClientConfig {
            max_attempts: 16,
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // Submission is single-attempt (not idempotent), so the retry loop is
    // caller-owned here.
    let mut submitted = None;
    for attempt in 0..50u64 {
        match client.submit_job(1_000 + attempt, &job_spec) {
            Ok(snap) => {
                submitted = Some(snap);
                break;
            }
            Err(NetError::Io(_) | NetError::Decode(_) | NetError::Protocol(_)) => continue,
            Err(other) => panic!("submit under chaos failed with a non-transport error: {other}"),
        }
    }
    let submitted = submitted.expect("a 20% fault rate cannot exhaust 50 submit attempts");
    let over_tcp = client
        .wait_job(2_000, submitted.job, Duration::from_millis(1))
        .expect("polls retry through chaos");
    fepia::chaos::clear();

    assert_eq!(over_tcp.state, JobState::Done);
    assert_fronts_bitwise_equal(&truth, &over_tcp, "TCP under chaos");

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Lifecycle: cancellation and admission are typed, never panics.
// ---------------------------------------------------------------------------

#[test]
fn cancellation_is_typed_frees_capacity_and_preserves_the_prefix() {
    let _guard = guard();
    let etc = paper_etc(2003);
    let table = JobTable::new(JobTableConfig {
        max_jobs: 1,
        ..JobTableConfig::default()
    });

    let job = table
        .submit(slow_spec(&etc, 5))
        .expect("first job admitted");

    // The admission bound is full: a second submit is a typed refusal.
    match table.submit(spec(&etc, 6, 8, 2, 1)) {
        Err(JobError::Busy { running, limit }) => {
            assert_eq!((running, limit), (1, 1));
        }
        other => panic!("expected a typed Busy refusal, got {other:?}"),
    }

    // Let at least two batches land, then cancel mid-flight.
    loop {
        let s = table.status(job).expect("running job is pollable");
        assert!(
            !s.state.is_terminal(),
            "a 256-batch job cannot finish before two batches are observed"
        );
        if s.batches_done >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let at_cancel = table.cancel(job).expect("cancel is typed");
    assert_eq!(
        at_cancel.state,
        JobState::Cancelled,
        "in-flight polls see the typed terminal state immediately"
    );
    assert_eq!(
        table.status(job).expect("still pollable").state,
        JobState::Cancelled
    );

    // `wait` returns only after the runner released its slot, so the
    // next submit can never be refused on this job's account.
    let final_snap = table.wait(job).expect("wait returns the settled snapshot");
    assert_eq!(final_snap.state, JobState::Cancelled);
    assert!(
        final_snap.candidates_done >= 2 && final_snap.candidates_done < 256,
        "cancellation landed mid-flight ({} of 256 candidates)",
        final_snap.candidates_done
    );
    assert!(!final_snap.front.is_empty(), "best-so-far front survives");

    let replacement = table
        .submit(spec(&etc, 6, 8, 2, 1))
        .expect("cancellation freed the admission slot");
    table.wait(replacement).expect("replacement runs");

    // The cancelled front is the bitwise prefix of the same-seed search:
    // rerunning with population = candidates_done (any batching) must
    // reproduce it exactly.
    let mut prefix_spec = slow_spec(&etc, 5);
    prefix_spec.population = final_snap.candidates_done as u32;
    prefix_spec.batches = 1;
    let prefix = table.run(prefix_spec).expect("prefix rerun succeeds");
    assert_eq!(prefix.state, JobState::Done);
    assert_fronts_bitwise_equal(&final_snap, &prefix, "cancelled prefix");

    let stats = table.stats();
    assert_eq!(stats.cancelled, 1);
    assert!(stats.rejected >= 1);
}

#[test]
fn admission_validation_and_unknown_ids_are_typed_over_the_wire() {
    let _guard = guard();
    let etc = paper_etc(2003);

    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server = NetServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            jobs: JobTableConfig {
                max_jobs: 1,
                ..JobTableConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr(), ClientConfig::default()).unwrap();

    // A semantically impossible spec is a typed, permanent Invalid.
    let mut bad = spec(&etc, 1, 8, 2, 1);
    bad.tau = 0.5;
    match client.submit_job(1, &bad) {
        Err(NetError::Invalid(msg)) => {
            assert!(msg.contains('τ') || msg.contains("tau") || msg.contains("tolerance"))
        }
        other => panic!("expected typed Invalid for τ < 1, got {other:?}"),
    }

    // Polling a job that never existed is typed too.
    match client.job_status(2, 0xDEAD_BEEF) {
        Err(NetError::Invalid(msg)) => assert!(msg.contains("no such job")),
        other => panic!("expected typed Invalid for an unknown id, got {other:?}"),
    }

    // Fill the single admission slot, then overflow it: the refusal is
    // the wire's typed Overloaded family (submission never retries, so
    // the error surfaces on the first attempt).
    let slow = client
        .submit_job(3, &slow_spec(&etc, 5))
        .expect("first job admitted");
    match client.submit_job(4, &spec(&etc, 6, 8, 2, 1)) {
        Err(NetError::Overloaded { reason, .. }) => {
            assert_eq!(reason, ShedReason::QueueFull);
        }
        other => panic!("expected typed Overloaded past the job bound, got {other:?}"),
    }

    // Cancel over the wire: typed snapshot, capacity frees once the
    // runner winds down (at most one batch later).
    let cancelled = client.cancel_job(5, slow.job).expect("cancel is typed");
    assert_eq!(cancelled.state, JobState::Cancelled);
    let settled = client
        .wait_job(6_000, slow.job, Duration::from_millis(1))
        .expect("cancelled job settles");
    assert_eq!(settled.state, JobState::Cancelled);

    let mut admitted = None;
    for attempt in 0..500u64 {
        match client.submit_job(7_000 + attempt, &spec(&etc, 6, 8, 2, 1)) {
            Ok(snap) => {
                admitted = Some(snap);
                break;
            }
            Err(NetError::Overloaded { .. }) => {
                // The runner may still be draining its final batch.
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(other) => panic!("resubmit after cancel failed: {other}"),
        }
    }
    let admitted = admitted.expect("cancellation must free the admission slot");
    let done = client
        .wait_job(8_000, admitted.job, Duration::from_millis(1))
        .expect("replacement job completes");
    assert_eq!(done.state, JobState::Done);
    assert_eq!(done.candidates_done, 8);

    server.shutdown();
}
