#!/usr/bin/env bash
# Performance gates:
#
# * plan_speedup — the compiled-plan layer (DeltaEval-vs-full move
#   evaluation; compile-once batch vs per-item compile), recorded in
#   BENCH_plan.json. The bench asserts the acceptance bars (>= 5x move
#   eval, >= 1.5x batch).
# * chaos_overhead — the fault-injection layer's disabled path, recorded
#   in BENCH_chaos.json. The bench asserts the < 2% overhead budget with
#   FEPIA_CHAOS unset.
# * serve_bench — the evaluation service's warm-cache path (sharded
#   workers, plan cache, DeltaEval move probes), recorded in
#   BENCH_serve.json. The bench asserts >= 50k cached move-evals/sec and
#   a >= 90% plan-cache hit rate.
# * net_bench — the same warm service behind the fepia-net TCP protocol,
#   recorded in BENCH_net.json. The bench asserts >= 25k cached
#   move-evals/sec over localhost TCP.
# * netscale — connection scaling on the event-loop I/O plane: pipelined
#   clients at 1/64/1024 connections, recorded in BENCH_netscale.json.
#   The bench asserts >= 25k evals/sec at 64 connections and that the
#   1024-connection figure stays within 2x of the 64-connection one.
# * overload — goodput under brownout: 16 deadline-carrying drivers at
#   8x worker capacity, recorded in BENCH_overload.json. The bench
#   asserts >= 10k goodput units/sec and that every offered call
#   resolves typed (no transport/protocol failures under overload).
# * curve — degradation-curve amortization: warm-cache Curve requests
#   (33-level dense grid) vs the equivalent per-level single-τ Verdict
#   stream, recorded in BENCH_curve.json. The bench asserts >= 50k curve
#   points/sec and a >= 2x warm-vs-cold amortization ratio.
# * resilience_report — a traced, fixed-seed chaos-burst soak over TCP
#   analyzed into RESMETRIC-style resilience measures (degraded fraction,
#   recovery time, area-under-degradation), recorded in RESILIENCE.json.
#   The bin exits non-zero if any measure violates its threshold.
#
# Every bench runs even if an earlier one fails, so one invocation shows
# the full picture; the final status summary line reports each verdict
# and the script exits non-zero if any bench regressed.
set -euo pipefail
cd "$(dirname "$0")/.."

export FEPIA_RESULTS="${FEPIA_RESULTS:-$PWD/results}"
# The chaos_overhead bench measures the *disabled* path.
unset FEPIA_CHAOS

declare -A status
failed=0

run_bench() {
  local name="$1" json="$2"
  echo "==> cargo bench -p fepia-bench --bench $name"
  if cargo bench -p fepia-bench --bench "$name"; then
    status[$name]=PASS
    cp "$FEPIA_RESULTS/$json" "$json"
    echo "bench: wrote $(pwd)/$json"
  else
    status[$name]=FAIL
    failed=1
  fi
}

# The resilience soak is a bin, not a Criterion bench: it drives a traced
# chaos-burst soak and self-gates against the thresholds embedded in its
# report.
run_resilience() {
  echo "==> cargo run --release -p fepia-bench --bin resilience_report"
  if cargo run --release -p fepia-bench --bin resilience_report; then
    status[resilience]=PASS
    cp "$FEPIA_RESULTS/RESILIENCE.json" RESILIENCE.json
    echo "bench: wrote $(pwd)/RESILIENCE.json"
  else
    status[resilience]=FAIL
    failed=1
  fi
}

run_bench plan_speedup BENCH_plan.json
run_bench chaos_overhead BENCH_chaos.json
run_bench serve_bench BENCH_serve.json
run_bench net_bench BENCH_net.json
run_bench netscale BENCH_netscale.json
run_bench overload BENCH_overload.json
run_bench curve BENCH_curve.json
run_resilience

echo "bench status: plan_speedup=${status[plan_speedup]} chaos_overhead=${status[chaos_overhead]} serve_bench=${status[serve_bench]} net_bench=${status[net_bench]} netscale=${status[netscale]} overload=${status[overload]} curve=${status[curve]} resilience=${status[resilience]}"
exit "$failed"
