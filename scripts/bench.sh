#!/usr/bin/env bash
# Performance benches, driven by scripts/bench_manifest.txt ('run'
# records). Each target self-documents its workload and asserts its own
# acceptance bars in-bench; the manifest is the single registry of what
# runs and which JSON report it writes (copied to the repo root on
# success). The regression thresholds live in the checked-in JSONs and
# are enforced separately by scripts/check_bench.sh ('gate' records).
#
# Every bench runs even if an earlier one fails, so one invocation shows
# the full picture; the final status summary line reports each verdict
# and the script exits non-zero if any bench regressed.
set -euo pipefail
cd "$(dirname "$0")/.."

export FEPIA_RESULTS="${FEPIA_RESULTS:-$PWD/results}"
# The chaos_overhead bench measures the *disabled* path.
unset FEPIA_CHAOS

manifest="scripts/bench_manifest.txt"
[ -f "$manifest" ] || { echo "bench: missing $manifest" >&2; exit 2; }

failed=0
summary=""

while read -r kind target json; do
  case "$kind" in
    bench) cmd=(cargo bench -p fepia-bench --bench "$target") ;;
    bin)   cmd=(cargo run --release -p fepia-bench --bin "$target") ;;
    *) echo "bench: unknown run kind '$kind' in $manifest" >&2; exit 2 ;;
  esac
  echo "==> ${cmd[*]}"
  if "${cmd[@]}"; then
    summary+=" $target=PASS"
    cp "$FEPIA_RESULTS/$json" "$json"
    echo "bench: wrote $(pwd)/$json"
  else
    summary+=" $target=FAIL"
    failed=1
  fi
done < <(awk '$1 == "run" { print $2, $3, $4 }' "$manifest")

echo "bench status:$summary"
exit "$failed"
