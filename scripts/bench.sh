#!/usr/bin/env bash
# Performance gates:
#
# * plan_speedup — the compiled-plan layer (DeltaEval-vs-full move
#   evaluation; compile-once batch vs per-item compile), recorded in
#   BENCH_plan.json. The bench asserts the acceptance bars (>= 5x move
#   eval, >= 1.5x batch).
# * chaos_overhead — the fault-injection layer's disabled path, recorded
#   in BENCH_chaos.json. The bench asserts the < 2% overhead budget with
#   FEPIA_CHAOS unset.
# * serve_bench — the evaluation service's warm-cache path (sharded
#   workers, plan cache, DeltaEval move probes), recorded in
#   BENCH_serve.json. The bench asserts >= 50k cached move-evals/sec and
#   a >= 90% plan-cache hit rate.
#
# A non-zero exit from either bench means a performance regression.
set -euo pipefail
cd "$(dirname "$0")/.."

export FEPIA_RESULTS="${FEPIA_RESULTS:-$PWD/results}"

echo "==> cargo bench -p fepia-bench --bench plan_speedup"
cargo bench -p fepia-bench --bench plan_speedup

cp "$FEPIA_RESULTS/BENCH_plan.json" BENCH_plan.json
echo "bench: wrote $(pwd)/BENCH_plan.json"

echo "==> cargo bench -p fepia-bench --bench chaos_overhead"
unset FEPIA_CHAOS
cargo bench -p fepia-bench --bench chaos_overhead

cp "$FEPIA_RESULTS/BENCH_chaos.json" BENCH_chaos.json
echo "bench: wrote $(pwd)/BENCH_chaos.json"

echo "==> cargo bench -p fepia-bench --bench serve_bench"
cargo bench -p fepia-bench --bench serve_bench

cp "$FEPIA_RESULTS/BENCH_serve.json" BENCH_serve.json
echo "bench: wrote $(pwd)/BENCH_serve.json"
