#!/usr/bin/env bash
# Performance gate for the compiled-plan layer: runs the plan_speedup bench
# (DeltaEval-vs-full move evaluation; compile-once batch vs per-item
# compile) and records the measured numbers in BENCH_plan.json at the repo
# root. The bench itself asserts the acceptance bars (>= 5x move eval,
# >= 1.5x batch), so a non-zero exit means a performance regression.
set -euo pipefail
cd "$(dirname "$0")/.."

export FEPIA_RESULTS="${FEPIA_RESULTS:-$PWD/results}"

echo "==> cargo bench -p fepia-bench --bench plan_speedup"
cargo bench -p fepia-bench --bench plan_speedup

cp "$FEPIA_RESULTS/BENCH_plan.json" BENCH_plan.json
echo "bench: wrote $(pwd)/BENCH_plan.json"
