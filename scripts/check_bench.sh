#!/usr/bin/env bash
# CI bench-regression gate, driven by scripts/bench_manifest.txt.
#
# Runs a fresh `scripts/bench.sh` into a scratch results directory, then
# walks the manifest's 'gate' records: each compares a fresh measurement
# in $FEPIA_RESULTS/<json> against the *threshold field of the
# checked-in* <json> at the repo root (fresh value, checked-in
# threshold: retuning a bar requires a reviewed edit to the checked-in
# JSON, and a perf regression fails the job even if someone also lowered
# the in-bench assert). The manifest is the single registry — adding a
# bench or a bar never touches this script.
#
# The checked-in files are left untouched; fresh JSONs stay in
# $FEPIA_RESULTS for the workflow to upload as artifacts. Exits non-zero
# on any regression, with a per-gate PASS/FAIL summary.
set -euo pipefail
cd "$(dirname "$0")/.."

export FEPIA_RESULTS="${FEPIA_RESULTS:-$PWD/results/bench_gate}"

manifest="scripts/bench_manifest.txt"
[ -f "$manifest" ] || { echo "check_bench: missing $manifest" >&2; exit 1; }

# Every report the manifest's run records produce (the stash list).
mapfile -t jsons < <(awk '$1 == "run" { print $4 }' "$manifest")

# Preserve the checked-in JSONs: bench.sh copies fresh ones over them.
stash="$(mktemp -d)"
restore_stash() {
  for f in "${jsons[@]}"; do
    [ -f "$stash/$f" ] && cp "$stash/$f" "$f"
  done
  rm -rf "$stash"
}
trap restore_stash EXIT
for f in "${jsons[@]}"; do
  [ -f "$f" ] || { echo "check_bench: missing checked-in $f" >&2; exit 1; }
  cp "$f" "$stash/$f"
done

echo "==> check_bench: running fresh benches into $FEPIA_RESULTS"
scripts/bench.sh

# field FILE KEY [OCCURRENCE] — extracts the OCCURRENCE-th (default 1st)
# numeric value of "KEY": in FILE. The JSON is produced by our own benches
# with a fixed shape, so line-oriented extraction is reliable.
field() {
  local file="$1" key="$2" occ="${3:-1}"
  awk -v key="\"$key\":" -v occ="$occ" '
    index($0, key) {
      n++
      if (n == occ) {
        v = substr($0, index($0, key) + length(key))
        gsub(/[ ,}]/, "", v)
        print v
        exit
      }
    }' "$file"
}

fail=0
# gate NAME FRESH OP BASELINE — checks FRESH OP BASELINE (>= or <=).
gate() {
  local name="$1" fresh="$2" op="$3" baseline="$4"
  if [ -z "$fresh" ] || [ -z "$baseline" ]; then
    echo "  FAIL $name: could not extract values (fresh='$fresh', baseline='$baseline')"
    fail=1
  elif awk -v a="$fresh" -v b="$baseline" -v op="$op" \
      'BEGIN { exit !((op == ">=" && a+0 >= b+0) || (op == "<=" && a+0 <= b+0)) }'; then
    echo "  PASS $name: $fresh $op $baseline"
  else
    echo "  FAIL $name: $fresh violates $op $baseline"
    fail=1
  fi
}

echo "==> check_bench: fresh measurements vs checked-in thresholds"
# Gate records: <json>|<label>|<fresh_key[:occ]>|<op>|<threshold_key[:occ]>
while IFS='|' read -r json label fresh_spec op threshold_spec; do
  fresh_key="${fresh_spec%%:*}"
  fresh_occ=1; [[ "$fresh_spec" == *:* ]] && fresh_occ="${fresh_spec##*:}"
  threshold_key="${threshold_spec%%:*}"
  threshold_occ=1; [[ "$threshold_spec" == *:* ]] && threshold_occ="${threshold_spec##*:}"
  case "$op" in
    ">="|"<=") ;;
    *) echo "  FAIL $label: unknown op '$op' in $manifest"; fail=1; continue ;;
  esac
  gate "$label" \
    "$(field "$FEPIA_RESULTS/$json" "$fresh_key" "$fresh_occ")" "$op" \
    "$(field "$stash/$json" "$threshold_key" "$threshold_occ")"
done < <(sed -n 's/^gate //p' "$manifest")

if [ "$fail" -ne 0 ]; then
  echo "check_bench: REGRESSION — one or more gates failed"
  exit 1
fi
echo "check_bench: all gates passed"
