#!/usr/bin/env bash
# CI bench-regression gate.
#
# Runs a fresh `scripts/bench.sh` into a scratch results directory and
# compares the fresh measurements against the *threshold fields of the
# checked-in* BENCH_*.json files at the repo root:
#
#   BENCH_plan.json   move_eval.speedup  >= move_eval.threshold
#                     batch_eval.speedup >= batch_eval.threshold
#   BENCH_chaos.json  bounded_overhead_pct <= threshold_pct
#   BENCH_serve.json  evals_per_sec >= evals_per_sec_threshold
#                     cache_hit_rate >= hit_rate_threshold
#   BENCH_net.json    evals_per_sec >= evals_per_sec_threshold
#   BENCH_netscale.json  evals_per_sec_64 >= evals_per_sec_threshold
#                        scale_ratio_1024_vs_64 >= scale_ratio_threshold
#   BENCH_overload.json  goodput_units_per_sec >= goodput_threshold
#                        typed_outcome_fraction >= typed_fraction_threshold
#   BENCH_curve.json  curve_points_per_sec >= curve_points_threshold
#                     warm_cold_ratio >= amortization_threshold
#   RESILIENCE.json   degraded_fraction <= degraded_fraction_threshold
#                     recovery_us <= recovery_us_threshold
#                     aud_seconds <= aud_seconds_threshold
#
# (Fresh value, checked-in threshold: retuning a bar requires a reviewed
# edit to the checked-in JSON, and a perf regression fails the job even
# if someone also lowered the in-bench assert.)
#
# The checked-in files are left untouched; fresh JSONs stay in
# $FEPIA_RESULTS for the workflow to upload as artifacts. Exits non-zero
# on any regression, with a per-gate PASS/FAIL summary.
set -euo pipefail
cd "$(dirname "$0")/.."

export FEPIA_RESULTS="${FEPIA_RESULTS:-$PWD/results/bench_gate}"

# Preserve the checked-in JSONs: bench.sh copies fresh ones over them.
stash="$(mktemp -d)"
trap 'for f in BENCH_plan.json BENCH_chaos.json BENCH_serve.json BENCH_net.json BENCH_netscale.json BENCH_overload.json BENCH_curve.json RESILIENCE.json; do
        [ -f "$stash/$f" ] && cp "$stash/$f" "$f"
      done; rm -rf "$stash"' EXIT
for f in BENCH_plan.json BENCH_chaos.json BENCH_serve.json BENCH_net.json BENCH_netscale.json BENCH_overload.json BENCH_curve.json RESILIENCE.json; do
  [ -f "$f" ] || { echo "check_bench: missing checked-in $f" >&2; exit 1; }
  cp "$f" "$stash/$f"
done

echo "==> check_bench: running fresh benches into $FEPIA_RESULTS"
scripts/bench.sh

# field FILE KEY [OCCURRENCE] — extracts the OCCURRENCE-th (default 1st)
# numeric value of "KEY": in FILE. The JSON is produced by our own benches
# with a fixed shape, so line-oriented extraction is reliable.
field() {
  local file="$1" key="$2" occ="${3:-1}"
  awk -v key="\"$key\":" -v occ="$occ" '
    index($0, key) {
      n++
      if (n == occ) {
        v = substr($0, index($0, key) + length(key))
        gsub(/[ ,}]/, "", v)
        print v
        exit
      }
    }' "$file"
}

fail=0
# gate NAME FRESH OP BASELINE — checks FRESH OP BASELINE (>= or <=).
gate() {
  local name="$1" fresh="$2" op="$3" baseline="$4"
  if [ -z "$fresh" ] || [ -z "$baseline" ]; then
    echo "  FAIL $name: could not extract values (fresh='$fresh', baseline='$baseline')"
    fail=1
  elif awk -v a="$fresh" -v b="$baseline" -v op="$op" \
      'BEGIN { exit !((op == ">=" && a+0 >= b+0) || (op == "<=" && a+0 <= b+0)) }'; then
    echo "  PASS $name: $fresh $op $baseline"
  else
    echo "  FAIL $name: $fresh violates $op $baseline"
    fail=1
  fi
}

echo "==> check_bench: fresh measurements vs checked-in thresholds"
# BENCH_plan.json: two nested blocks; "speedup"/"threshold" occur in
# move_eval first, batch_eval second.
gate "plan move_eval speedup" \
  "$(field "$FEPIA_RESULTS/BENCH_plan.json" speedup 1)" ">=" \
  "$(field "$stash/BENCH_plan.json" threshold 1)"
gate "plan batch_eval speedup" \
  "$(field "$FEPIA_RESULTS/BENCH_plan.json" speedup 2)" ">=" \
  "$(field "$stash/BENCH_plan.json" threshold 2)"
gate "chaos disabled-path overhead pct" \
  "$(field "$FEPIA_RESULTS/BENCH_chaos.json" bounded_overhead_pct)" "<=" \
  "$(field "$stash/BENCH_chaos.json" threshold_pct)"
gate "serve evals/sec" \
  "$(field "$FEPIA_RESULTS/BENCH_serve.json" evals_per_sec)" ">=" \
  "$(field "$stash/BENCH_serve.json" evals_per_sec_threshold)"
gate "serve cache hit rate" \
  "$(field "$FEPIA_RESULTS/BENCH_serve.json" cache_hit_rate)" ">=" \
  "$(field "$stash/BENCH_serve.json" hit_rate_threshold)"
gate "net evals/sec over TCP" \
  "$(field "$FEPIA_RESULTS/BENCH_net.json" evals_per_sec)" ">=" \
  "$(field "$stash/BENCH_net.json" evals_per_sec_threshold)"
gate "netscale evals/sec at 64 connections" \
  "$(field "$FEPIA_RESULTS/BENCH_netscale.json" evals_per_sec_64)" ">=" \
  "$(field "$stash/BENCH_netscale.json" evals_per_sec_threshold)"
gate "netscale 1024-vs-64 connection ratio" \
  "$(field "$FEPIA_RESULTS/BENCH_netscale.json" scale_ratio_1024_vs_64)" ">=" \
  "$(field "$stash/BENCH_netscale.json" scale_ratio_threshold)"
gate "overload goodput units/sec" \
  "$(field "$FEPIA_RESULTS/BENCH_overload.json" goodput_units_per_sec)" ">=" \
  "$(field "$stash/BENCH_overload.json" goodput_threshold)"
gate "overload typed-outcome fraction" \
  "$(field "$FEPIA_RESULTS/BENCH_overload.json" typed_outcome_fraction)" ">=" \
  "$(field "$stash/BENCH_overload.json" typed_fraction_threshold)"
gate "curve points/sec" \
  "$(field "$FEPIA_RESULTS/BENCH_curve.json" curve_points_per_sec)" ">=" \
  "$(field "$stash/BENCH_curve.json" curve_points_threshold)"
gate "curve warm-vs-cold amortization" \
  "$(field "$FEPIA_RESULTS/BENCH_curve.json" warm_cold_ratio)" ">=" \
  "$(field "$stash/BENCH_curve.json" amortization_threshold)"
gate "resilience degraded fraction" \
  "$(field "$FEPIA_RESULTS/RESILIENCE.json" degraded_fraction)" "<=" \
  "$(field "$stash/RESILIENCE.json" degraded_fraction_threshold)"
gate "resilience recovery time us" \
  "$(field "$FEPIA_RESULTS/RESILIENCE.json" recovery_us)" "<=" \
  "$(field "$stash/RESILIENCE.json" recovery_us_threshold)"
gate "resilience area-under-degradation" \
  "$(field "$FEPIA_RESULTS/RESILIENCE.json" aud_seconds)" "<=" \
  "$(field "$stash/RESILIENCE.json" aud_seconds_threshold)"

if [ "$fail" -ne 0 ]; then
  echo "check_bench: REGRESSION — one or more gates failed"
  exit 1
fi
echo "check_bench: all gates passed"
