#!/usr/bin/env bash
# Repo verification gate: formatting, lints, tier-1 build+test, full
# workspace tests. Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (debug)"
cargo test -q

echo "==> tier-1: cargo test --release -q"
cargo test --release -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "verify: OK"
