//! Offline shim for the `rand 0.8` API subset the fepia workspace uses.
//!
//! The build environment has no registry access, so this path crate stands in
//! for the real `rand`. It provides [`RngCore`], [`Rng`], [`SeedableRng`] and
//! [`rngs::StdRng`] with the same method signatures; the generator itself is
//! xoshiro256++ (seeded through SplitMix64), which is deterministic and
//! statistically strong but **not** bit-compatible with upstream `StdRng`.
//! Nothing in the workspace pins upstream bit streams, only same-seed
//! reproducibility — which this shim guarantees.

/// Low-level uniform bit source (the object-safe core trait).
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),+) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )+};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::draw(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        (start + (end - start) * f64::draw(rng)).min(end)
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        (start + (end - start) * f32::draw(rng)).min(end)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire-style scaling of 64 uniform bits onto the span; the
                // bias is < span/2^64, irrelevant at experiment scale.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing convenience trait (blanket-implemented for every
/// [`RngCore`], including trait objects, as in upstream rand).
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset: byte-array seeds plus `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed with SplitMix64 (the same
    /// expansion upstream rand documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut sm);
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic, 2^256−1 period, passes BigCrush; **not** bit-compatible
    /// with upstream `StdRng` (ChaCha12) — see the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; remix through
            // SplitMix64 so every seed (including zeros) is usable.
            if s.iter().all(|&w| w == 0) {
                let mut sm = 0x9E37_79B9_97F4_A7C1u64;
                for w in s.iter_mut() {
                    *w = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    /// Alias: the shim's small generator is the same xoshiro core.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x), "{x}");
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn int_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let k: usize = rng.gen_range(0..5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let k: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&k));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn trait_object_usable() {
        let mut rng = StdRng::seed_from_u64(4);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: f64 = dynrng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn uniform_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let draws: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0), "{draws:?}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
