//! Offline shim for the `proptest 1` API subset the fepia workspace uses.
//!
//! Runs each property over a fixed number of pseudo-random cases (default 64,
//! override with `PROPTEST_CASES`) drawn from a per-test deterministic seed.
//! There is **no shrinking**: a failure reports the case index and message so
//! the case can be replayed by running the test again (the sequence is
//! deterministic).
//!
//! Supported surface: [`Strategy`] for numeric ranges, tuples (arity 2–4) and
//! `prop::collection::vec`; the [`Strategy::prop_map`], [`Strategy::prop_filter`]
//! and [`Strategy::prop_filter_map`] combinators; the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error type carried by a failing property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The source of randomness handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (resamples; panics if the predicate
    /// rejects too persistently).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Combined filter + map: `f` returns `None` to reject.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

const MAX_REJECTS: usize = 10_000;

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected {MAX_REJECTS} samples: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected {MAX_REJECTS} samples: {}",
            self.reason
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// The `prop::` namespace (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Lengths accepted by [`vec`]: a fixed size or a half-open range.
        pub trait SizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for vectors whose elements come from `element`.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// `prop::collection::vec(element, len)` — vectors of `len` elements.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` site expects.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, Just, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drives one property: runs `body` over `case_count()` deterministic cases.
/// Called by the [`proptest!`] macro expansion, not directly.
pub fn run_property(test_name: &str, body: impl Fn(&mut TestRng) -> TestCaseResult) {
    // Per-test deterministic seed, stable across runs and platforms.
    let mut seed = 0xcbf29ce484222325u64; // FNV-1a
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    for case in 0..case_count() {
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(case as u64));
        if let Err(TestCaseError(msg)) = body(&mut rng) {
            panic!("property {test_name} failed at case {case}: {msg}");
        }
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}: {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}: {} (left: {:?}, right: {:?}, {}:{})",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_prop(x in 0.0..1.0f64, v in prop::collection::vec(0..10usize, 3)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |prop_rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), prop_rng);)+
                    $body
                    Ok(())
                });
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vectors(
            x in -2.0..2.0f64,
            n in 1usize..5,
            v in prop::collection::vec(0.0..1.0f64, 2..6),
        ) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..5).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| (0.0..1.0).contains(&e)));
        }

        #[test]
        fn tuples_and_map((a, b) in (0..10i64, 0..10i64), s in (1.0..2.0f64).prop_map(|x| x * 10.0)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((10.0..20.0).contains(&s));
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn filters(x in (0..100i32).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use super::{Strategy, TestRng};
        use rand::SeedableRng;
        let strat = (0.0..1.0f64, 0usize..100);
        let a: Vec<_> = {
            let mut rng = TestRng::seed_from_u64(7);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::seed_from_u64(7);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        super::run_property("always_fails", |_| Err(super::TestCaseError("nope".into())));
    }
}
