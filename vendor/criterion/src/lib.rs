//! Offline shim for the `criterion 0.5` API subset the fepia workspace uses.
//!
//! A wall-clock micro-benchmark harness: each benchmark is warmed up, then
//! timed in batches until a measurement budget is spent, and the per-call
//! median / mean / min are printed. Honoured environment and CLI knobs:
//!
//! * `--test` (passed by `cargo test --benches`): run every benchmark body
//!   exactly once, as a smoke test.
//! * `FEPIA_BENCH_MS`: per-benchmark measurement budget in milliseconds
//!   (default 300).
//!
//! The statistical machinery of real criterion (bootstrap confidence
//! intervals, regression detection, HTML reports) is intentionally absent.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Mode: when true, run the routine once and skip measurement.
    test_mode: bool,
    budget: Duration,
    /// Collected per-call timings in nanoseconds (one entry per batch).
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-call nanoseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and batch-size calibration: grow the batch until one batch
        // costs ≥ ~1 ms (or a single call already exceeds the threshold).
        let mut batch: u64 = 1;
        let calibration_floor = Duration::from_millis(1);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= calibration_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        // Measurement: fixed batches until the budget is spent.
        let start = Instant::now();
        while start.elapsed() < self.budget || self.samples.len() < 5 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
            if self.samples.len() >= 500 {
                break;
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput (printed per run).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored (shim compatibility): sample-count hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored (shim compatibility): measurement-time hint.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Runs one parameterized benchmark; `input` is passed to the closure.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group (printing only; kept for API compatibility).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            budget: self.criterion.budget,
            samples: Vec::new(),
        };
        f(&mut b);
        if b.test_mode {
            println!("bench {full}: ok (test mode)");
            return;
        }
        let mut xs = b.samples;
        if xs.is_empty() {
            println!("bench {full}: no samples (routine never called iter?)");
            return;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = xs[xs.len() / 2];
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let min = xs[0];
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 * 1_000.0 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  ({:.1} MB/s)", n as f64 * 1_000.0 / median)
            }
            _ => String::new(),
        };
        println!(
            "bench {full}: median {}  mean {}  min {}  ({} samples){thr}",
            format_ns(median),
            format_ns(mean),
            format_ns(min),
            xs.len()
        );
    }
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let budget_ms = std::env::var("FEPIA_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            test_mode,
            budget: Duration::from_millis(budget_ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_once_in_test_mode() {
        let mut b = Bencher {
            test_mode: true,
            budget: Duration::from_millis(1),
            samples: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            test_mode: false,
            budget: Duration::from_millis(5),
            samples: Vec::new(),
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(b.samples.len() >= 5);
        assert!(b.samples.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("solve", 20).to_string(), "solve/20");
        assert_eq!(BenchmarkId::from_parameter("l2").to_string(), "l2");
    }
}
