//! One §3.1 robustness evaluation over TCP.
//!
//! Starts the evaluation service behind a `fepia-net` server on an
//! ephemeral localhost port, connects the blocking client, evaluates a
//! small independent-application scenario (Eq. 6/7) across the wire, and
//! prints the robustness radii and verdict — then shows that the bytes
//! that crossed the wire carry exactly the in-process answer.
//!
//! Run with: `cargo run --release --example net_roundtrip`

use fepia::core::VerdictKind;
use fepia::etc::EtcMatrix;
use fepia::mapping::Mapping;
use fepia::net::wire::encode_response;
use fepia::net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia::serve::{EvalKind, EvalRequest, Scenario, Service, ServiceConfig};
use std::sync::Arc;

fn main() {
    // The §3.1 system: 6 applications on 2 machines, 20% makespan slack.
    let etc = Arc::new(EtcMatrix::from_rows(vec![
        vec![10.0, 20.0],
        vec![15.0, 10.0],
        vec![12.0, 24.0],
        vec![30.0, 18.0],
        vec![9.0, 9.0],
        vec![22.0, 11.0],
    ]));
    let mapping = Mapping::new(vec![0, 1, 0, 1, 0, 1], 2);
    let tau = 1.2;
    let scenario = Arc::new(
        Scenario::new(Arc::clone(&etc), mapping, tau, Default::default()).expect("valid scenario"),
    );

    // Service + TCP server on an ephemeral port.
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral localhost port");
    let addr = server.local_addr();
    println!("server listening on {addr}");

    // Evaluate the scenario's operating point across the wire.
    let req = EvalRequest {
        id: 1,
        scenario: Arc::clone(&scenario),
        kind: EvalKind::Verdict,
    };
    let mut client = NetClient::connect(addr, ClientConfig::default()).expect("connect");
    let resp = client.call(&req).expect("evaluate over TCP");

    let verdict = &resp.verdicts[0];
    println!("\nrobustness radii over TCP (Eq. 6, machine finishing times):");
    for (j, r) in verdict.radii.iter().enumerate() {
        match r {
            fepia::core::RadiusVerdict::Exact(res) => {
                println!("  r(F_{j}) = {:.3}  ({:?})", res.radius, res.method)
            }
            other => println!("  r(F_{j}) = {other:?}"),
        }
    }
    println!(
        "\nrobustness metric (Eq. 7): {:.3}  [verdict: {:?}, binding machine: {:?}]",
        verdict.metric_lo, verdict.kind, verdict.binding
    );
    assert_eq!(verdict.kind, VerdictKind::Exact);

    // The equivalence guarantee, demonstrated: the response that crossed
    // the wire is bitwise identical to the in-process answer.
    let in_process = service
        .call_blocking(req)
        .expect("in-process evaluation accepted");
    assert_eq!(
        encode_response(&resp).len(),
        encode_response(&in_process).len()
    );
    let bitwise = verdict.metric_lo.to_bits() == in_process.verdicts[0].metric_lo.to_bits();
    println!("bitwise equal to the in-process answer: {bitwise}");
    assert!(bitwise);

    let stats = server.shutdown();
    println!(
        "\nserver stats: {} connection(s), {} frame(s) read, {} written",
        stats.connections, stats.frames_read, stats.frames_written
    );
    Arc::try_unwrap(service)
        .ok()
        .expect("server released the service")
        .shutdown();
}
