//! A small Fig. 3-style sweep with the observability layer switched on:
//! generates random mappings of the paper's §4.2 HC system, runs each one
//! through the generic FePIA analysis (instrumented `fepia-core` radius +
//! analysis layers, on the instrumented `fepia-par` static driver), then
//! cross-validates one mapping through the black-box numeric solver path,
//! and finally prints the metrics snapshot the run accumulated — solver
//! call/eval counters, the radius-dispatch mix, and per-stage span timings.
//!
//! Run with `cargo run --release --example instrumented_sweep`. Set
//! `FEPIA_OBS=/tmp/events.jsonl` beforehand to also capture the structured
//! per-solve event stream as JSON lines.

use fepia_core::{FeatureSpec, FnImpact, Perturbation, RadiusOptions, Tolerance};
use fepia_etc::{generate_cvb, EtcParams};
use fepia_mapping::{makespan_robustness_generic, Mapping};
use fepia_optim::VecN;
use fepia_par::{par_map, ParConfig};
use fepia_stats::{rng_for, Summary};

const SEED: u64 = 7;
const MAPPINGS: usize = 60;
const TAU: f64 = 1.2;

fn main() {
    // Programmatic switch-on; FEPIA_OBS=1 in the environment does the same.
    fepia_obs::set_enabled(true);

    // --- Fig. 3-style sweep: random mappings, analytic radius per machine. ---
    let params = EtcParams::paper_section_4_2();
    let etc = generate_cvb(&mut rng_for(SEED, 0), &params);
    let indices: Vec<usize> = (0..MAPPINGS).collect();
    let opts = RadiusOptions::default();
    // Explicit thread count: the default backs off to sequential on 1-CPU
    // hosts, and this example exists to show the `par.*` metrics too.
    let metrics: Vec<f64> = par_map(&indices, &ParConfig::with_threads(4), |_, &i| {
        let mapping = Mapping::random(
            &mut rng_for(SEED, i as u64 + 1),
            params.apps,
            params.machines,
        );
        makespan_robustness_generic(&mapping, &etc, TAU, &opts)
            .expect("τ ≥ 1 and matching shapes")
            .metric
    });
    let s = Summary::of(&metrics);
    println!(
        "swept {MAPPINGS} mappings (τ = {TAU}): robustness ∈ [{:.3}, {:.3}], mean {:.3}",
        s.min, s.max, s.mean
    );

    // --- One black-box cross-check so the numeric solver shows up too. ---
    let mapping = Mapping::random(&mut rng_for(SEED, 1), params.apps, params.machines);
    let makespan = mapping.makespan(&etc);
    let times = mapping.assigned_times(&etc);
    let on_0 = mapping.apps_on(0);
    let impact =
        FnImpact::new(move |v: &VecN| on_0.iter().map(|&a| v[a]).sum()).with_dim(times.len());
    let feature = FeatureSpec::new(
        "finish-time m_0 (black box)",
        Tolerance::upper(TAU * makespan),
    );
    let pert = Perturbation::continuous("ETC vector C", VecN::new(times));
    let r = fepia_core::robustness_radius(&feature, &impact, &pert, &opts).expect("numeric radius");
    println!(
        "numeric cross-check on mapping 0, machine 0: r = {:.3} ({} f-evals, {} iterations)",
        r.radius, r.f_evals, r.iterations
    );

    // --- What the run looked like, from the metrics registry. ---
    println!("\n--- metrics snapshot ---");
    let snap = fepia_obs::global().snapshot();
    print!("{snap}");

    println!("\n--- snapshot as JSON (fepia.metrics/v1) ---");
    println!("{}", snap.to_json());
}
