//! One traced §3.1 robustness evaluation over TCP, with its latency
//! breakdown.
//!
//! Turns on full tracing programmatically, routes the span events into an
//! in-memory sink, evaluates the paper's §3.1 scenario across the wire,
//! then reconstructs the request's per-stage latency breakdown
//! (client.send → net.read → queue.wait → worker.exec → net.write →
//! client.recv) from the telemetry — the same stream
//! `resilience_report` analyzes at soak scale. A stats poll over the same
//! connection closes the loop with the server's own counters.
//!
//! Run with: `cargo run --release --example traced_roundtrip`

use fepia::etc::EtcMatrix;
use fepia::mapping::Mapping;
use fepia::net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia::serve::{EvalKind, EvalRequest, Scenario, Service, ServiceConfig};
use std::sync::Arc;

fn main() {
    // Full-trace telemetry into an in-memory sink (a JsonlSink pointed at
    // a file gives the same lines on disk; FEPIA_TRACE=full + FEPIA_OBS
    // does the same without touching code).
    let sink = Arc::new(fepia_obs::VecSink::new());
    fepia_obs::install_sink(sink.clone());
    fepia_obs::set_events_enabled(true);
    fepia_obs::set_trace_enabled(true);
    fepia_obs::set_trace_wall(true);

    // The §3.1 system: 6 applications on 2 machines, 20% makespan slack.
    let etc = Arc::new(EtcMatrix::from_rows(vec![
        vec![10.0, 20.0],
        vec![15.0, 10.0],
        vec![12.0, 24.0],
        vec![30.0, 18.0],
        vec![9.0, 9.0],
        vec![22.0, 11.0],
    ]));
    let mapping = Mapping::new(vec![0, 1, 0, 1, 0, 1], 2);
    let scenario =
        Arc::new(Scenario::new(etc, mapping, 1.2, Default::default()).expect("valid scenario"));

    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral localhost port");
    let mut client =
        NetClient::connect(server.local_addr(), ClientConfig::default()).expect("connect");

    let req = EvalRequest {
        id: 1,
        scenario,
        kind: EvalKind::Verdict,
    };
    let resp = client.call(&req).expect("evaluate over TCP");
    let verdict = &resp.verdicts[0];
    println!(
        "robustness metric (Eq. 7): {:.3}  [verdict: {:?}]",
        verdict.metric_lo, verdict.kind
    );

    // The trace id the client minted for request 1 — every span of this
    // request carries it.
    let trace = fepia_obs::TraceId::mint(req.id);
    println!("trace id: {}", trace.to_hex());

    // Close the loop with the server's own counters over the same socket.
    let stats = client.stats(2).expect("stats poll");
    let totals = stats.service_totals();
    println!(
        "\nserver counters: {} submitted, {} completed, {} frames read over {} connection(s)",
        totals.submitted, totals.completed, stats.net.frames_read, stats.net.connections
    );

    // Drain the server before reading the telemetry: its writer thread
    // emits the net.write span *after* the response bytes are already on
    // their way to the client, so only the joined shutdown guarantees the
    // stream is complete.
    drop(client);
    server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("server released the service")
        .shutdown();

    // Reconstruct the per-stage breakdown from the telemetry, exactly as
    // the resilience analyzer does at soak scale.
    let telemetry = fepia_obs::Telemetry::from_lines(sink.lines());
    let mut spans: Vec<_> = telemetry
        .spans
        .iter()
        .filter(|s| s.trace == trace.0)
        .collect();
    spans.sort_by_key(|s| s.seq);
    println!("\nper-stage latency breakdown:");
    for s in &spans {
        println!(
            "  seq {}  {:<12} {:>10.1} us",
            s.seq,
            s.stage,
            s.us.unwrap_or(0.0)
        );
    }
    assert_eq!(
        spans.iter().map(|s| s.stage.as_str()).collect::<Vec<_>>(),
        [
            "client.send",
            "net.read",
            "queue.wait",
            "worker.exec",
            "net.write",
            "client.recv"
        ],
        "one clean request = the full six-stage pipeline"
    );

    fepia_obs::set_trace_enabled(false);
    fepia_obs::set_events_enabled(false);
}
