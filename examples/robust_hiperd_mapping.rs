//! Robustness-aware mapping of the HiPer-D system.
//!
//! The paper's §1 poses the research problem of *choosing* mappings that
//! maximize robustness. This example runs the HiPer-D heuristic suite
//! (random / round-robin / min-occupancy / slack-greedy / robust-greedy /
//! robust-local-search) on a paper-scale generated system (§4.3 parameters)
//! and compares slack against the Eq. 11 robustness metric — showing both
//! that explicit robustness optimization pays and that optimizing slack is
//! not the same thing.
//!
//! Run with: `cargo run --release --example robust_hiperd_mapping`

use fepia::core::RadiusOptions;
use fepia::hiperd::heuristics::all_hiperd_heuristics;
use fepia::hiperd::{generate_system, load_robustness, system_slack, GenParams};
use fepia::stats::rng_for;

fn main() {
    let sys = generate_system(&mut rng_for(42, 0), &GenParams::paper_section_4_3());
    println!(
        "HiPer-D system: {} sensors, {} applications, {} machines, λ_orig = {:?}\n",
        sys.n_sensors(),
        sys.n_apps,
        sys.n_machines,
        sys.lambda_orig
    );

    println!(
        "{:<22} {:>9} {:>14} {:>10}  binding constraint",
        "heuristic", "slack", "robustness ρ", "floored"
    );
    println!("{}", "-".repeat(78));

    let opts = RadiusOptions::default();
    let mut best: Option<(String, f64)> = None;
    for h in all_hiperd_heuristics() {
        let mapping = h.map(&sys, &mut rng_for(42, 1));
        let slack = system_slack(&sys, &mapping);
        let rob = load_robustness(&sys, &mapping, &opts).expect("well-posed");
        println!(
            "{:<22} {:>9.4} {:>14.1} {:>10.0}  {}",
            h.name(),
            slack,
            rob.metric,
            rob.floored,
            rob.binding
        );
        if best.as_ref().is_none_or(|(_, m)| rob.metric > *m) {
            best = Some((h.name().to_string(), rob.metric));
        }
    }

    let (name, metric) = best.expect("at least one heuristic");
    println!("{}", "-".repeat(78));
    println!(
        "most robust: {name} — tolerates any sensor-load increase with Euclidean \
         norm up to {metric:.0} objects/data set without a QoS violation."
    );
}
