//! A robustness-guided optimizer job over TCP: the §3.1 system searched
//! for its makespan × robustness Pareto front.
//!
//! Starts the evaluation service behind a `fepia-net` server, submits a
//! seeded four-heuristic population as one wire-v3 `SubmitJob` frame,
//! streams best-so-far progress with `JobStatus` polls while the job
//! runs, and prints the final front: every point a mapping with its
//! makespan and its Eq. 7 robustness metric (the smallest Eq. 6 radius
//! over all machines — how much simultaneous ETC error the allocation
//! tolerates before the makespan leaves τ times its estimate).
//!
//! The front is deterministic: candidate `k` is a pure function of
//! `(seed, k)`, so rerunning this example reproduces every bit.
//!
//! Run with: `cargo run --release --example optimize_roundtrip`

use fepia::etc::EtcMatrix;
use fepia::net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia::serve::{default_portfolio, JobSpec, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // The §3.1 system: 6 applications on 2 machines, τ = 1.2 (the
    // makespan may grow 20% before the allocation is violated).
    let etc = Arc::new(EtcMatrix::from_rows(vec![
        vec![10.0, 20.0],
        vec![15.0, 10.0],
        vec![12.0, 24.0],
        vec![30.0, 18.0],
        vec![9.0, 9.0],
        vec![22.0, 11.0],
    ]));
    let spec = JobSpec {
        etc: Arc::clone(&etc),
        tau: 1.2,
        seed: 2003,
        population: 64,
        batches: 16,
        heuristics: default_portfolio(2_000),
        threads: 0,
    };

    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral localhost port");
    println!("server listening on {}", server.local_addr());

    let mut client =
        NetClient::connect(server.local_addr(), ClientConfig::default()).expect("connect");

    // Submit: one frame carries the ETC, the tolerance, the seed, and
    // the heuristic portfolio; the reply is the job's first snapshot.
    let submitted = client.submit_job(1, &spec).expect("submit over TCP");
    println!(
        "submitted job {} ({} candidates in {} batches, {} heuristics)",
        submitted.job,
        submitted.candidates_total,
        submitted.batches_total,
        spec.heuristics.len()
    );

    // Stream progress: each poll returns the best-so-far front.
    let mut poll_id = 100u64;
    let final_snap = loop {
        let snap = client
            .job_status(poll_id, submitted.job)
            .expect("poll over TCP");
        poll_id += 1;
        println!(
            "  progress: batch {}/{}, {}/{} candidates, {} delta-evals, front {} points",
            snap.batches_done,
            snap.batches_total,
            snap.candidates_done,
            snap.candidates_total,
            snap.evals_done,
            snap.front.len()
        );
        if snap.state.is_terminal() {
            break snap;
        }
        std::thread::sleep(Duration::from_millis(2));
    };

    println!(
        "\njob {} finished: {:?}, {} delta evaluations",
        final_snap.job, final_snap.state, final_snap.evals_done
    );
    println!("makespan × robustness Pareto front (makespan-ascending):");
    println!(
        "  {:>10}  {:>12}  {:>14}  heuristic / assignment",
        "makespan", "metric ρ", "candidate"
    );
    for p in &final_snap.front {
        println!(
            "  {:>10.4}  {:>12.6}  {:>14}  {} {:?}",
            p.makespan, p.metric, p.index, p.heuristic, p.assignment
        );
    }
    println!(
        "\nevery point trades estimated makespan against the Eq. 7 metric: a\n\
         larger ρ means more simultaneous ETC estimation error is provably\n\
         tolerated before the makespan exceeds τ = {} times its estimate",
        1.2
    );

    server.shutdown();
}
