//! Heuristic comparison: makespan vs robustness across 13 mapping
//! heuristics.
//!
//! The paper's §1 motivates finding mappings that *maximize robustness*;
//! its §4.2 shows makespan alone cannot identify them. This example runs
//! every heuristic in `fepia-mapping` on the same paper-scale instance
//! (20 applications × 5 machines, CVB 10/0.7/0.7) and tabulates makespan,
//! load-balance index and the robustness metric side by side — the
//! makespan winner and the robustness winner are usually different
//! mappings, which is the paper's point.
//!
//! Run with: `cargo run --example heuristic_comparison`

use fepia::etc::{generate_cvb, EtcParams};
use fepia::mapping::heuristics::all_heuristics;
use fepia::mapping::makespan_robustness;
use fepia::stats::rng_for;

fn main() {
    let etc = generate_cvb(&mut rng_for(7, 0), &EtcParams::paper_section_4_2());
    let tau = 1.2;

    println!(
        "{:<22} {:>10} {:>8} {:>12} {:>16}",
        "heuristic", "makespan", "LBI", "robustness ρ", "binding machine"
    );
    println!("{}", "-".repeat(72));

    let mut best_makespan: Option<(String, f64)> = None;
    let mut best_robustness: Option<(String, f64)> = None;

    for h in all_heuristics(2_000) {
        let mapping = h.map(&etc, &mut rng_for(7, 1));
        let rob = makespan_robustness(&mapping, &etc, tau).expect("valid instance");
        println!(
            "{:<22} {:>10.2} {:>8.3} {:>12.3} {:>16}",
            h.name(),
            rob.makespan,
            mapping.load_balance_index(&etc),
            rob.metric,
            format!("m_{}", rob.binding_machine),
        );
        if best_makespan
            .as_ref()
            .is_none_or(|(_, v)| rob.makespan < *v)
        {
            best_makespan = Some((h.name().to_string(), rob.makespan));
        }
        if best_robustness
            .as_ref()
            .is_none_or(|(_, v)| rob.metric > *v)
        {
            best_robustness = Some((h.name().to_string(), rob.metric));
        }
    }

    let (mk_name, mk) = best_makespan.expect("at least one heuristic");
    let (rb_name, rb) = best_robustness.expect("at least one heuristic");
    println!("{}", "-".repeat(72));
    println!("shortest makespan: {mk_name} ({mk:.2})");
    println!("most robust:       {rb_name} (ρ = {rb:.3})");
    if mk_name != rb_name {
        println!(
            "→ the two objectives pick different mappings — why the paper argues \
             for an explicit robustness metric."
        );
    }
}
