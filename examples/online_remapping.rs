//! Using the robustness metric as an **online re-mapping trigger**.
//!
//! The paper's motivation: systems "operate in an environment that
//! undergoes unpredictable changes", so a mapping chosen at design time
//! slowly loses headroom as reality drifts away from the assumptions. This
//! example simulates sensor loads drifting upward as a random walk and
//! compares three operating policies for the HiPer-D system:
//!
//! * **never remap** — keep the initial mapping until a QoS violation;
//! * **remap on violation** — recover only after a constraint breaks;
//! * **remap on low robustness** — re-run the robust-greedy heuristic
//!   whenever the *remaining* robustness radius (recomputed at the current
//!   loads) falls below a threshold, i.e. use ρ as an early-warning gauge.
//!
//! The robustness-triggered policy acts before anything breaks — the
//! operational payoff of having a metric with the units of the load.
//!
//! Run with: `cargo run --release --example online_remapping`

use fepia::core::RadiusOptions;
use fepia::hiperd::heuristics::{HiperdHeuristic, RobustGreedy};
use fepia::hiperd::path::enumerate_paths;
use fepia::hiperd::robustness::{build_constraints, load_robustness_with_paths};
use fepia::hiperd::{generate_system, GenParams, HiperdMapping, HiperdSystem};
use fepia::optim::VecN;
use fepia::stats::rng_for;
use rand::Rng;

/// Remaining robustness of `mapping` when the loads have drifted to
/// `lambda`: recompute ρ on a copy of the system anchored at the current
/// loads.
fn remaining_robustness(sys: &HiperdSystem, mapping: &HiperdMapping, lambda: &[f64]) -> f64 {
    let mut drifted = sys.clone();
    drifted.lambda_orig = lambda.to_vec();
    let paths = enumerate_paths(&drifted);
    load_robustness_with_paths(&drifted, mapping, &paths, &RadiusOptions::default())
        .map(|r| r.metric)
        .unwrap_or(0.0)
}

fn any_violation(sys: &HiperdSystem, mapping: &HiperdMapping, lambda: &[f64]) -> bool {
    let paths = enumerate_paths(sys);
    let set = build_constraints(sys, mapping, &paths);
    let l = VecN::new(lambda.to_vec());
    set.constraints.iter().any(|c| c.value(&l) > c.bound)
}

fn remap(sys: &HiperdSystem, lambda: &[f64], seed: u64) -> HiperdMapping {
    let mut anchored = sys.clone();
    anchored.lambda_orig = lambda.to_vec();
    RobustGreedy.map(&anchored, &mut rng_for(seed, 0))
}

struct PolicyOutcome {
    violations: usize,
    remaps: usize,
}

fn simulate(
    sys: &HiperdSystem,
    policy: &str,
    steps: usize,
    threshold: f64,
    seed: u64,
) -> PolicyOutcome {
    let mut rng = rng_for(seed, 1);
    let mut lambda = sys.lambda_orig.clone();
    // The design-time mapping: feasible at λ_orig but with little spare
    // robustness (the least-robust feasible mapping of a small random
    // draw) — what a deployment that never looked at ρ might ship.
    let mut mapping = (0..30)
        .map(|k| HiperdMapping::random(&mut rng_for(seed, 2 + k), sys.n_apps, sys.n_machines))
        .filter(|m| !any_violation(sys, m, &sys.lambda_orig))
        .min_by(|a, b| {
            remaining_robustness(sys, a, &sys.lambda_orig)
                .partial_cmp(&remaining_robustness(sys, b, &sys.lambda_orig))
                .expect("robustness is never NaN")
        })
        .expect("some random mapping is feasible at the initial loads");
    let mut violations = 0;
    let mut remaps = 0;

    for step in 0..steps {
        // Gently upward-biased random walk on every sensor load: slow
        // enough that well-chosen mappings stay feasible throughout, fast
        // enough to exhaust a mediocre design-time mapping's headroom.
        for l in lambda.iter_mut() {
            *l = (*l + rng.gen_range(-15.0f64..21.0)).max(0.0);
        }
        let violated = any_violation(sys, &mapping, &lambda);
        if violated {
            violations += 1;
        }
        match policy {
            "never" => {}
            "on-violation" => {
                if violated {
                    mapping = remap(sys, &lambda, seed + step as u64);
                    remaps += 1;
                }
            }
            "on-low-robustness" => {
                if remaining_robustness(sys, &mapping, &lambda) < threshold {
                    mapping = remap(sys, &lambda, seed + step as u64);
                    remaps += 1;
                }
            }
            other => panic!("unknown policy {other}"),
        }
    }
    PolicyOutcome { violations, remaps }
}

fn main() {
    let sys = generate_system(&mut rng_for(11, 0), &GenParams::paper_section_4_3());
    let steps = 100;
    let threshold = 300.0; // objects/data set of remaining headroom

    println!(
        "drifting loads for {steps} steps from λ_orig = {:?}; threshold ρ < {threshold}\n",
        sys.lambda_orig
    );
    println!(
        "{:<20} {:>22} {:>8}",
        "policy", "violated time-steps", "remaps"
    );
    println!("{}", "-".repeat(54));
    for policy in ["never", "on-violation", "on-low-robustness"] {
        let out = simulate(&sys, policy, steps, threshold, 99);
        println!("{policy:<20} {:>22} {:>8}", out.violations, out.remaps);
    }
    println!(
        "\nUsing the remaining robustness radius as the trigger re-maps *before* \
         constraints break: the metric's units (objects per data set) make the \
         threshold directly meaningful to operators."
    );
}
