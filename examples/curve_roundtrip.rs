//! The §3.1 scenario's degradation curve ρ(τ) over TCP.
//!
//! Starts the evaluation service behind a `fepia-net` server, sends one
//! v3 `Curve` request sweeping the makespan tolerance factor τ over an
//! explicit grid, and prints the resulting ρ(τ) points — the whole
//! degradation function of the paper's example system from a single
//! compiled plan. Then demonstrates the differential guarantee: each
//! curve point is bitwise identical to an independent single-τ
//! evaluation of a scenario compiled at exactly that tolerance.
//!
//! Run with: `cargo run --release --example curve_roundtrip`

use fepia::core::VerdictKind;
use fepia::etc::EtcMatrix;
use fepia::mapping::Mapping;
use fepia::net::{ClientConfig, NetClient, NetServer, ServerConfig};
use fepia::serve::{CurveGrid, CurveSpec, EvalKind, EvalRequest, Scenario, Service, ServiceConfig};
use std::sync::Arc;

fn main() {
    // The §3.1 system: 6 applications on 2 machines.
    let etc = Arc::new(EtcMatrix::from_rows(vec![
        vec![10.0, 20.0],
        vec![15.0, 10.0],
        vec![12.0, 24.0],
        vec![30.0, 18.0],
        vec![9.0, 9.0],
        vec![22.0, 11.0],
    ]));
    let mapping = Mapping::new(vec![0, 1, 0, 1, 0, 1], 2);
    let taus = vec![1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 2.0];
    let scenario = Arc::new(
        Scenario::new(
            Arc::clone(&etc),
            mapping.clone(),
            taus[0],
            Default::default(),
        )
        .expect("valid scenario"),
    );

    let service = Arc::new(Service::start(ServiceConfig::default()));
    let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral localhost port");
    println!("server listening on {}", server.local_addr());

    // One request, the whole curve: every level shares one compiled plan.
    let req = EvalRequest {
        id: 1,
        scenario: Arc::clone(&scenario),
        kind: EvalKind::Curve(CurveSpec {
            grid: CurveGrid::Explicit(taus.clone()),
        }),
    };
    let mut client =
        NetClient::connect(server.local_addr(), ClientConfig::default()).expect("connect");
    let resp = client.call(&req).expect("curve over TCP");
    let meta = resp.curve.as_ref().expect("curve responses carry meta");

    println!("\ndegradation curve ρ(τ) (Eq. 7 at each tolerance level):");
    for (tau, v) in meta.taus.iter().zip(&resp.verdicts) {
        println!(
            "  τ = {tau:.2}  ->  ρ = {:8.3}   [{:?}, binding machine {:?}]",
            v.metric_lo, v.kind, v.binding
        );
    }
    println!(
        "monotone non-decreasing as τ loosens: {}",
        if meta.monotone {
            "certified"
        } else {
            "VIOLATED"
        }
    );
    assert!(meta.monotone);

    // The differential guarantee: each served point equals, bit for bit,
    // an independent scenario compiled at exactly that τ.
    for (tau, v) in meta.taus.iter().zip(&resp.verdicts) {
        let solo = Arc::new(
            Scenario::new(Arc::clone(&etc), mapping.clone(), *tau, Default::default()).unwrap(),
        );
        let compiled = solo.compile().expect("compiles");
        let mut ws = compiled.plan().workspace();
        let single = compiled.verdict_at_origin(&mut ws, &Default::default());
        assert_eq!(v.kind, VerdictKind::Exact);
        assert_eq!(v.metric_lo.to_bits(), single.metric_lo.to_bits());
        assert_eq!(v.metric_hi.to_bits(), single.metric_hi.to_bits());
    }
    println!("every curve point bitwise equal to an independent single-τ evaluation");

    server.shutdown();
    Arc::try_unwrap(service)
        .ok()
        .expect("server released the service")
        .shutdown();
}
