//! Deriving a robustness metric for a *new* system with the FePIA
//! procedure — the paper's §2 recipe applied to a scenario it never
//! analyzed, showing the framework's generality.
//!
//! Scenario: a rack of 3 servers under a shared power cap. The perturbation
//! parameter is the per-server utilization vector `u`. Features:
//!
//! * total power draw `P(u) = Σ (idle_i + k_i·u_i^1.5)` must stay under the
//!   rack cap (a convex, nonlinear impact → numeric solver);
//! * each server's 99th-percentile response time, modeled as
//!   `rt_i(u) = base_i / (1 − u_i/u_max)` — convex and increasing — must
//!   stay under an SLO (solved numerically too);
//! * a linear cooling budget `C(u) = c·u` (analytic hyperplane radius).
//!
//! Steps 1–4 of FePIA map directly onto the `fepia-core` API.
//!
//! Run with: `cargo run --example custom_fepia_system`

use fepia::core::{
    FeatureSpec, FepiaAnalysis, FnImpact, LinearImpact, Perturbation, RadiusOptions, Tolerance,
};
use fepia::optim::VecN;

fn main() {
    // Step 2 (P): the perturbation parameter — utilizations, currently 55%,
    // 40%, 30%.
    let u_orig = VecN::from([0.55, 0.40, 0.30]);
    let perturbation = Perturbation::continuous("utilization u", u_orig);

    let mut analysis = FepiaAnalysis::new(perturbation);

    // Step 1 (Fe) + Step 3 (I): features with tolerances and impacts.
    // Rack power: idle 120 W/server, k = 180 W at full tilt, cap 900 W.
    analysis.add_feature(
        FeatureSpec::new("rack power (W)", Tolerance::upper(900.0)),
        FnImpact::new(|u: &VecN| {
            u.iter()
                .map(|&ui| 120.0 + 180.0 * ui.max(0.0).powf(1.5))
                .sum()
        })
        .with_dim(3),
    );

    // Response-time SLO per server: base 20 ms, saturation at u = 0.95,
    // SLO 200 ms.
    for i in 0..3 {
        analysis.add_feature(
            FeatureSpec::new(
                format!("p99 latency server {i} (ms)"),
                Tolerance::upper(200.0),
            ),
            FnImpact::new(move |u: &VecN| {
                let ui = u[i].clamp(0.0, 0.949_999);
                20.0 / (1.0 - ui / 0.95)
            })
            .with_dim(3),
        );
    }

    // Cooling budget: airflow cost 100·Σu ≤ 240 (linear ⇒ exact radius).
    analysis.add_feature(
        FeatureSpec::new("cooling budget", Tolerance::upper(240.0)),
        LinearImpact::new(VecN::from([100.0, 100.0, 100.0]), 0.0),
    );

    // Step 4 (A): the analysis.
    let report = analysis.run(&RadiusOptions::default()).expect("well-posed");

    println!("FePIA analysis of the rack system (u_orig = (0.55, 0.40, 0.30)):\n");
    println!("{:<28} {:>10}  method", "feature", "radius");
    for r in &report.radii {
        println!(
            "{:<28} {:>10.4}  {:?}",
            r.name, r.result.radius, r.result.method
        );
    }
    println!(
        "\nrobustness metric ρ = {:.4} (binding: {})",
        report.metric,
        report.binding_feature().name
    );
    println!(
        "→ utilizations may drift in ANY direction by up to {:.4} (Euclidean) \
         before any power, latency, or cooling requirement is violated.",
        report.metric
    );

    // Show the boundary witness: where the binding feature gives way.
    if let Some(p) = &report.binding_feature().result.boundary_point {
        println!(
            "   first violation at u* = ({:.3}, {:.3}, {:.3})",
            p[0], p[1], p[2]
        );
    }
}
