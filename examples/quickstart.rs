//! Quickstart: the paper's §3.1 analysis in thirty lines.
//!
//! Maps 8 independent applications onto 3 machines, computes the makespan,
//! the per-machine robustness radii (Eq. 6) and the robustness metric
//! (Eq. 7), and interprets the result the way the paper does: the largest
//! Euclidean ETC-error norm the mapping is guaranteed to absorb.
//!
//! Run with: `cargo run --example quickstart`

use fepia::etc::{generate_cvb, EtcParams};
use fepia::mapping::{makespan_robustness, validate_radius_guarantee, Mapping};
use fepia::stats::rng_for;

fn main() {
    // A small heterogeneous instance (CVB generator, paper's §4.2 knobs).
    let params = EtcParams {
        apps: 8,
        machines: 3,
        mean: 10.0,
        task_heterogeneity: 0.7,
        machine_heterogeneity: 0.7,
    };
    let etc = generate_cvb(&mut rng_for(1, 0), &params);

    // A mapping: application i runs on machine assignment[i].
    let mapping = Mapping::new(vec![0, 1, 2, 0, 1, 2, 0, 1], 3);
    let tau = 1.2; // tolerate a 20% makespan overrun

    let finish = mapping.finishing_times(&etc);
    println!("finishing times F_j: {finish:.1?}");
    println!("predicted makespan M_orig = {:.2}", mapping.makespan(&etc));
    println!(
        "load balance index = {:.3}",
        mapping.load_balance_index(&etc)
    );

    let rob = makespan_robustness(&mapping, &etc, tau).expect("valid instance");
    println!("\nper-machine robustness radii (Eq. 6):");
    for (j, r) in rob.radii.iter().enumerate() {
        println!("  r(F_{j}) = {r:.3}");
    }
    println!(
        "robustness metric ρ = {:.3} seconds (binding machine m_{})",
        rob.metric, rob.binding_machine
    );
    println!(
        "→ ANY combination of ETC errors with ‖error‖₂ ≤ {:.3} keeps the actual \
         makespan within {tau}× the prediction.",
        rob.metric
    );

    // Trust, but verify: Monte-Carlo failure injection.
    let outcome =
        validate_radius_guarantee(&mapping, &etc, tau, 2_000, &mut rng_for(1, 1)).unwrap();
    println!(
        "\nMonte-Carlo check: {} random inside-radius error vectors, {} false violations; \
         beyond-boundary probe violates: {}",
        outcome.trials, outcome.false_violations, outcome.boundary_probe_violates
    );
    assert!(outcome.holds());
}
