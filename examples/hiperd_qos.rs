//! HiPer-D QoS analysis: building a §3.2 system by hand.
//!
//! Constructs a small sensor→applications→actuator streaming system with
//! the public API (including a *nonlinear* computation-time function, which
//! exercises the convex numeric solver), evaluates two candidate mappings,
//! and reports slack, robustness, the binding constraint, and the boundary
//! loads λ* — the §4.3/Table 2 workflow in miniature.
//!
//! Run with: `cargo run --example hiperd_qos`

use fepia::core::RadiusOptions;
use fepia::hiperd::path::enumerate_paths;
use fepia::hiperd::{
    load_robustness, system_slack, Edge, HiperdMapping, HiperdSystem, LoadFn, Node, Sensor, Shape,
};

fn build_system() -> HiperdSystem {
    // Two sensors: a fast radar stream and a slow sonar stream.
    let sensors = vec![Sensor::new("radar", 5e-4), Sensor::new("sonar", 2e-4)];
    let zero = LoadFn::zero(2);

    // radar → filter(a0) → track(a1) → fuse(a3) → actuator
    // sonar → detect(a2) ────────────→ fuse(a3)   (update input)
    let edges = vec![
        Edge {
            from: Node::Sensor(0),
            to: Node::App(0),
            comm: zero.clone(),
        },
        Edge {
            from: Node::App(0),
            to: Node::App(1),
            comm: zero.clone(),
        },
        Edge {
            from: Node::App(1),
            to: Node::App(3),
            comm: zero.clone(),
        },
        Edge {
            from: Node::Sensor(1),
            to: Node::App(2),
            comm: zero.clone(),
        },
        Edge {
            from: Node::App(2),
            to: Node::App(3),
            comm: zero.clone(),
        },
        Edge {
            from: Node::App(3),
            to: Node::Actuator(0),
            comm: zero,
        },
    ];

    // Computation-time functions per (application, machine). The tracker's
    // association step is superlinear in the radar load on the slow
    // machine — a convex Power shape, solved numerically.
    let comp = vec![
        vec![
            LoadFn::linear(vec![2.0, 0.0], 1.0),
            LoadFn::linear(vec![3.0, 0.0], 1.0),
        ],
        vec![
            LoadFn::linear(vec![4.0, 0.0], 1.0),
            LoadFn::new(vec![0.05, 0.0], Shape::Power(2.0), 1.0),
        ],
        vec![
            LoadFn::linear(vec![0.0, 3.0], 1.0),
            LoadFn::linear(vec![0.0, 5.0], 1.0),
        ],
        vec![
            LoadFn::linear(vec![1.0, 1.0], 1.0),
            LoadFn::linear(vec![2.0, 2.0], 1.0),
        ],
    ];

    let sys = HiperdSystem {
        sensors,
        n_apps: 4,
        n_actuators: 1,
        n_machines: 2,
        edges,
        comp,
        latency_limits: vec![3_000.0, 4_000.0],
        lambda_orig: vec![100.0, 60.0],
    };
    sys.validate().expect("hand-built system is consistent");
    sys
}

fn report(sys: &HiperdSystem, name: &str, mapping: &HiperdMapping) {
    let slack = system_slack(sys, mapping);
    let rob = load_robustness(sys, mapping, &RadiusOptions::default()).expect("well-posed");
    println!("mapping {name}: assignment {:?}", mapping.assignment());
    println!("  slack                = {slack:.4}");
    println!(
        "  robustness ρ(Φ, λ)   = {:.2} objects/data set (floored {})",
        rob.metric, rob.floored
    );
    println!("  binding constraint   = {}", rob.binding);
    if let Some(star) = &rob.lambda_star {
        println!(
            "  boundary loads λ*    = ({:.0}, {:.0})  [from λ_orig = (100, 60)]",
            star[0], star[1]
        );
    }
    println!("  per-constraint radii:");
    for r in &rob.report.radii {
        println!("    {:<18} r = {:.2}", r.name, r.result.radius);
    }
    println!();
}

fn main() {
    let sys = build_system();
    let paths = enumerate_paths(&sys);
    println!(
        "system: {} apps, {} paths ({} trigger / {} update)\n",
        sys.n_apps,
        paths.len(),
        paths.iter().filter(|p| p.is_trigger()).count(),
        paths.iter().filter(|p| !p.is_trigger()).count(),
    );

    // Candidate A packs the radar chain on machine 0 (multitasking ×);
    // candidate B spreads it.
    report(&sys, "A (packed)", &HiperdMapping::new(vec![0, 0, 1, 0], 2));
    report(&sys, "B (spread)", &HiperdMapping::new(vec![0, 1, 1, 0], 2));

    println!(
        "Slack ranks the mappings one way; the robustness metric tells you how many \
         additional objects per data set each can actually absorb — the paper's Table 2 \
         shows the two measures can disagree badly."
    );
}
